(* Range analytics (lib/analytics): oracle equivalence of select_all /
   range_count / range_distinct / range_topk against the naive
   scalar-loop over a plain array, QCheck-driven on all three variants;
   interleaved dynamic inserts/deletes; frozen-snapshot reads while the
   owner mutates; the window/argument error contract; and the
   Analytics_* probe counters. *)

module Xoshiro = Wt_bits.Xoshiro
module I = Wt_core.Indexed_sequence
module Probe = Wt_obs.Probe

let check_int = Alcotest.(check int)
let positions = Alcotest.(array int)
let tallies = Alcotest.(array (pair string int))

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* ------------------------------------------------------------------ *)
(* Naive oracles: the k-scalar-query loop over the window [lo, hi).
   Binarization is order-preserving (MSB-first, marker bits), so the
   implementation's path order is plain byte-lexicographic order here. *)

let o_select_all arr ?(prefix = "") ~lo ~hi () =
  let out = ref [] in
  for i = hi - 1 downto lo do
    if starts_with ~prefix arr.(i) then out := i :: !out
  done;
  Array.of_list !out

let o_tally arr ?(prefix = "") ~lo ~hi () =
  let tbl = Hashtbl.create 16 in
  for i = lo to hi - 1 do
    let s = arr.(i) in
    if starts_with ~prefix s then
      Hashtbl.replace tbl s (1 + Option.value (Hashtbl.find_opt tbl s) ~default:0)
  done;
  Hashtbl.fold (fun s c acc -> (s, c) :: acc) tbl []

let o_distinct arr ?prefix ~lo ~hi () =
  Array.of_list
    (List.sort
       (fun (a, _) (b, _) -> String.compare a b)
       (o_tally arr ?prefix ~lo ~hi ()))

let o_topk arr ?prefix ~lo ~hi ~k () =
  let l =
    List.sort
      (fun (a, ca) (b, cb) -> if ca <> cb then compare cb ca else String.compare a b)
      (o_tally arr ?prefix ~lo ~hi ())
  in
  Array.of_list (List.filteri (fun i _ -> i < k) l)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Format.asprintf "%a" I.pp_error e)

(* One full cross-check of a variant against the oracles, for one
   (prefix, window, k) case. *)
let check_case (type a) name (module V : Wtrie.STRING_API with type t = a) (wt : a) arr
    ?prefix ~lo ~hi ~k () =
  let ctx = Printf.sprintf "%s prefix=%s lo=%d hi=%d k=%d" name
      (match prefix with None -> "<none>" | Some p -> p) lo hi k
  in
  Alcotest.check positions (ctx ^ " select_all")
    (o_select_all arr ?prefix ~lo ~hi ())
    (ok (V.select_all ?prefix ~lo ~hi wt));
  check_int (ctx ^ " range_count")
    (Array.length (o_select_all arr ?prefix ~lo ~hi ()))
    (ok (V.range_count ?prefix wt ~lo ~hi));
  Alcotest.check tallies (ctx ^ " range_distinct")
    (o_distinct arr ?prefix ~lo ~hi ())
    (ok (V.range_distinct ?prefix ~lo ~hi wt));
  Alcotest.check tallies (ctx ^ " range_topk")
    (o_topk arr ?prefix ~lo ~hi ~k ())
    (ok (V.range_topk ?prefix ~lo ~hi wt ~k))

let check_all_variants arr ?prefix ~lo ~hi ~k () =
  check_case "static" (module Wtrie.Static) (Wtrie.Static.of_array arr) arr ?prefix ~lo
    ~hi ~k ();
  check_case "append" (module Wtrie.Append) (Wtrie.Append.of_array arr) arr ?prefix ~lo
    ~hi ~k ();
  check_case "dynamic" (module Wtrie.Dynamic) (Wtrie.Dynamic.of_array arr) arr ?prefix
    ~lo ~hi ~k ()

(* ------------------------------------------------------------------ *)
(* QCheck property: random short-alphabet sequences (heavy collisions,
   so tallies and ties are exercised), random windows, random prefixes
   including the empty one. *)

let word_gen = QCheck.Gen.(string_size ~gen:(char_range 'a' 'c') (int_range 1 4))

let case_gen =
  let open QCheck.Gen in
  list_size (int_range 0 120) word_gen >>= fun xs ->
  let n = List.length xs in
  int_range 0 n >>= fun lo ->
  int_range lo n >>= fun hi ->
  oneof
    [
      return None;
      map Option.some (string_size ~gen:(char_range 'a' 'c') (int_range 0 2));
    ]
  >>= fun prefix ->
  int_range 0 6 >>= fun k -> return (xs, lo, hi, prefix, k)

let case_print (xs, lo, hi, prefix, k) =
  Printf.sprintf "[%s] lo=%d hi=%d prefix=%s k=%d" (String.concat "," xs) lo hi
    (match prefix with None -> "<none>" | Some p -> Printf.sprintf "%S" p)
    k

let qcheck_oracle =
  QCheck.Test.make ~count:200 ~name:"range ops = naive loop (all variants)"
    (QCheck.make ~print:case_print case_gen)
    (fun (xs, lo, hi, prefix, k) ->
      let arr = Array.of_list xs in
      check_all_variants arr ?prefix ~lo ~hi ~k ();
      true)

(* ------------------------------------------------------------------ *)
(* Golden URL-log cases: defaults (?lo/?hi omitted), prefix narrowing,
   the tie-break direction. *)

let urls =
  [|
    "site.com/home"; "site.com/login"; "blog.net/post"; "site.com/home";
    "shop.org/cart"; "site.com/home"; "blog.net/post"; "site.com/api/v1";
  |]

let test_golden () =
  let wt = Wtrie.Append.of_array urls in
  Alcotest.check positions "select_all defaults" [| 0; 1; 3; 5; 7 |]
    (ok (Wtrie.Append.select_all ~prefix:"site.com/" wt));
  Alcotest.check positions "select_all window" [| 3; 5 |]
    (ok (Wtrie.Append.select_all ~prefix:"site.com/home" ~lo:1 ~hi:6 wt));
  check_int "range_count" 2 (ok (Wtrie.Append.range_count ~prefix:"blog.net/" wt ~lo:2 ~hi:8));
  Alcotest.check tallies "distinct window"
    [| ("blog.net/post", 2); ("shop.org/cart", 1); ("site.com/api/v1", 1); ("site.com/home", 2) |]
    (ok (Wtrie.Append.range_distinct ~lo:2 ~hi:8 wt));
  (* counts tie at 2: blog.net/post sorts before site.com/home *)
  Alcotest.check tallies "topk tie-break"
    [| ("blog.net/post", 2); ("site.com/home", 2) |]
    (ok (Wtrie.Append.range_topk ~lo:2 ~hi:8 wt ~k:2));
  Alcotest.check tallies "topk k beyond distinct"
    [| ("site.com/home", 3); ("blog.net/post", 2); ("shop.org/cart", 1);
       ("site.com/api/v1", 1); ("site.com/login", 1) |]
    (ok (Wtrie.Append.range_topk wt ~k:99))

(* ------------------------------------------------------------------ *)
(* Dynamic variant: interleaved inserts/deletes, cross-checked against
   a maintained naive array every few mutations. *)

let test_dynamic_interleaved () =
  let rng = Xoshiro.create 77 in
  let wt = Wtrie.Dynamic.create () in
  let naive = ref [] in
  let word () =
    Printf.sprintf "h%d.net/%d" (Xoshiro.int rng 5) (Xoshiro.int rng 13)
  in
  let insert_at pos s =
    Wtrie.Dynamic.insert wt ~pos s;
    let l = !naive in
    naive := List.filteri (fun i _ -> i < pos) l @ (s :: List.filteri (fun i _ -> i >= pos) l)
  in
  let delete_at pos =
    Wtrie.Dynamic.delete wt ~pos;
    naive := List.filteri (fun i _ -> i <> pos) !naive
  in
  for step = 1 to 240 do
    let n = List.length !naive in
    (match Xoshiro.int rng 3 with
    | 0 when n > 4 -> delete_at (Xoshiro.int rng n)
    | 1 -> Wtrie.Dynamic.append wt (let s = word () in naive := !naive @ [ s ]; s) |> ignore
    | _ -> insert_at (Xoshiro.int rng (n + 1)) (word ()));
    if step mod 20 = 0 then begin
      let arr = Array.of_list !naive in
      let n = Array.length arr in
      let lo = Xoshiro.int rng (n + 1) in
      let hi = lo + Xoshiro.int rng (n - lo + 1) in
      let prefix = if Xoshiro.int rng 2 = 0 then None else Some (Printf.sprintf "h%d." (Xoshiro.int rng 5)) in
      check_case "dynamic-interleaved" (module Wtrie.Dynamic) wt arr ?prefix ~lo ~hi
        ~k:(Xoshiro.int rng 5) ()
    end
  done

(* Snapshot isolation: a frozen snapshot keeps answering from the
   captured state while the owner keeps mutating. *)
let test_snapshot_reads () =
  let wt = Wtrie.Dynamic.of_array urls in
  let frozen = Array.copy urls in
  let snap = Wtrie.Dynamic.snapshot wt in
  (* owner churn after the snapshot *)
  for i = 0 to 49 do
    Wtrie.Dynamic.insert wt ~pos:0 (Printf.sprintf "new%d" i)
  done;
  Wtrie.Dynamic.delete wt ~pos:3;
  check_case "snapshot" (module Wtrie.Dynamic) snap frozen ~prefix:"site.com/" ~lo:1
    ~hi:7 ~k:3 ();
  check_case "snapshot-nopfx" (module Wtrie.Dynamic) snap frozen ~lo:0
    ~hi:(Array.length frozen) ~k:2 ();
  (* and the owner answers from its mutated state *)
  check_int "owner count" 1
    (ok (Wtrie.Dynamic.range_count ~prefix:"new7" wt ~lo:0 ~hi:(Wtrie.Dynamic.length wt)))

(* ------------------------------------------------------------------ *)
(* Error contract and degenerate windows. *)

let test_errors () =
  let wt = Wtrie.Append.of_array [| "a"; "b"; "a"; "c"; "a" |] in
  let err r = match r with Ok _ -> Alcotest.fail "expected error" | Error e -> e in
  Alcotest.(check bool) "lo negative" true
    (err (Wtrie.Append.select_all ~lo:(-1) wt) = I.Position_out_of_bounds { pos = -1; len = 5 });
  Alcotest.(check bool) "hi beyond n" true
    (err (Wtrie.Append.range_distinct ~hi:6 wt) = I.Position_out_of_bounds { pos = 6; len = 5 });
  Alcotest.(check bool) "hi < lo" true
    (err (Wtrie.Append.range_count wt ~lo:3 ~hi:2) = I.Position_out_of_bounds { pos = 2; len = 5 });
  Alcotest.(check bool) "negative k" true
    (err (Wtrie.Append.range_topk wt ~k:(-2)) = I.Negative_count { count = -2 });
  Alcotest.check tallies "k = 0" [||] (ok (Wtrie.Append.range_topk wt ~k:0));
  Alcotest.check positions "absent prefix" [||]
    (ok (Wtrie.Append.select_all ~prefix:"zzz" wt));
  check_int "absent prefix count" 0 (ok (Wtrie.Append.range_count ~prefix:"zzz" wt ~lo:0 ~hi:5));
  Alcotest.check tallies "empty window" [||]
    (ok (Wtrie.Append.range_distinct ~lo:2 ~hi:2 wt));
  (* empty sequence: every default-window op answers, empty *)
  let e = Wtrie.Append.create () in
  Alcotest.check positions "empty seq select_all" [||] (ok (Wtrie.Append.select_all e));
  Alcotest.check tallies "empty seq distinct" [||] (ok (Wtrie.Append.range_distinct e));
  Alcotest.check tallies "empty seq topk" [||] (ok (Wtrie.Append.range_topk e ~k:3));
  check_int "empty seq count" 0 (ok (Wtrie.Append.range_count e ~lo:0 ~hi:0))

(* ------------------------------------------------------------------ *)
(* Observability: one counter hit per front-door call. *)

let test_probes () =
  let wt = Wtrie.Append.of_array urls in
  Probe.reset ();
  Probe.enable ();
  ignore (ok (Wtrie.Append.select_all ~prefix:"site.com/" wt));
  ignore (ok (Wtrie.Append.range_count wt ~lo:0 ~hi:4));
  ignore (ok (Wtrie.Append.range_distinct wt));
  ignore (ok (Wtrie.Append.range_topk wt ~k:2));
  ignore (ok (Wtrie.Append.range_topk wt ~k:1));
  Probe.disable ();
  check_int "select_all counter" 1 (Probe.counter Wt_obs.Metric.Analytics_select_all);
  check_int "range_count counter" 1 (Probe.counter Wt_obs.Metric.Analytics_range_count);
  check_int "distinct counter" 1 (Probe.counter Wt_obs.Metric.Analytics_distinct);
  check_int "topk counter" 2 (Probe.counter Wt_obs.Metric.Analytics_topk);
  Probe.reset ()

let () =
  Alcotest.run "wt_analytics"
    [
      ( "oracle",
        [
          QCheck_alcotest.to_alcotest qcheck_oracle;
          Alcotest.test_case "golden url-log" `Quick test_golden;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "interleaved mutations" `Quick test_dynamic_interleaved;
          Alcotest.test_case "frozen snapshot reads" `Quick test_snapshot_reads;
        ] );
      ("errors", [ Alcotest.test_case "window/argument contract" `Quick test_errors ]);
      ("probes", [ Alcotest.test_case "analytics counters" `Quick test_probes ]);
    ]
