(* Fault-injection harness for the durability layer (the crash-safety
   contract of {!Durable} and format v2):

   - bit-flip and truncation sweeps over a snapshot container: every
     corrupted byte must surface as [Format_error], never a crash and
     never a silently-wrong load;
   - truncation and bit-flip sweeps over the WAL at every byte offset:
     recovery must yield exactly the records fully contained in the
     intact prefix, then the store must keep working;
   - injected crashes (byte-budget) during live appends and during
     checkpoints: every op that returned successfully must survive
     recovery, and a crash anywhere inside a checkpoint must lose
     nothing;
   - a randomized dynamic-variant workload with periodic crashes,
     checked against an in-memory oracle;
   - recover -> verify must round-trip any injected fault to a clean
     store. *)

module Fault = Wt_durable.Fault
module Wal = Wt_durable.Wal
module Persist = Wt_core.Persist
module Append_wt = Wt_core.Append_wt
module Binarize = Wt_strings.Binarize
module Xoshiro = Wt_bits.Xoshiro

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Filesystem helpers *)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("wt_faults_" ^ name)

let read_file p = In_channel.with_open_bin p In_channel.input_all
let write_file p s = Out_channel.with_open_bin p (fun oc -> Out_channel.output_string oc s)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let fresh_dir name =
  let d = tmp name in
  rm_rf d;
  Sys.mkdir d 0o755;
  d

let copy_store src dst =
  rm_rf dst;
  Sys.mkdir dst 0o755;
  List.iter
    (fun f -> write_file (Filename.concat dst f) (read_file (Filename.concat src f)))
    [ "snapshot.wtx"; "wal.log" ]

let flip_bit s off bit =
  let b = Bytes.of_string s in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor (1 lsl bit)));
  Bytes.to_string b

let store_contents dir =
  let t, _ = Durable.open_read_only ~verify:true dir in
  List.init (Durable.length t) (Durable.access t)

(* ------------------------------------------------------------------ *)
(* Snapshot container sweeps *)

let sample n =
  let rng = Xoshiro.create 11 in
  Array.init n (fun i ->
      Binarize.of_bytes
        (Printf.sprintf "s%03d-%c" i (Char.chr (Char.code 'a' + Xoshiro.int rng 26))))

let expect_format_error what load =
  match load () with
  | exception Persist.Format_error _ -> ()
  | exception e ->
      Alcotest.fail (Printf.sprintf "%s: unexpected exception %s" what (Printexc.to_string e))
  | _ -> Alcotest.fail (Printf.sprintf "%s: load succeeded on a corrupted index" what)

(* Flip one bit at (a stride over) every byte offset of a saved index:
   the load must always raise [Format_error]. *)
let test_snapshot_bit_flips () =
  let path = tmp "flip.wtx" in
  Persist.save_append (Append_wt.of_array (sample 64)) path;
  let pristine = read_file path in
  let len = String.length pristine in
  let stride = max 1 (len / 509) in
  let off = ref 0 in
  while !off < len do
    write_file path (flip_bit pristine !off (!off mod 8));
    expect_format_error
      (Printf.sprintf "bit flip at offset %d/%d" !off len)
      (fun () -> ignore (Persist.load_append path : Append_wt.t));
    off := !off + stride
  done;
  (* the pristine bytes still load *)
  write_file path pristine;
  Append_wt.check_invariants (Persist.load_append path);
  Sys.remove path

(* Cut the file at (a stride over) every possible length: always
   [Format_error], even when the cut lands on the recycled file's old
   content (the footer's repeated payload length closes that hole). *)
let test_snapshot_truncations () =
  let path = tmp "cut.wtx" in
  Persist.save_append (Append_wt.of_array (sample 64)) path;
  let pristine = read_file path in
  let len = String.length pristine in
  let stride = max 1 (len / 509) in
  let cut = ref 0 in
  while !cut < len do
    write_file path (String.sub pristine 0 !cut);
    expect_format_error
      (Printf.sprintf "truncated to %d/%d bytes" !cut len)
      (fun () -> ignore (Persist.load_append path : Append_wt.t));
    cut := !cut + stride
  done;
  write_file path pristine;
  ignore (Persist.load_append path : Append_wt.t);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Format-v3 arena sweeps: the flat static index must fail closed under
   the same sweeps as the v2 snapshot.  [`Copy] re-verifies the payload
   CRC, so every corrupted byte must surface as a [Storage_error]
   result; the mmap fast path skips the payload CRC but must still
   reject anything whose structural validation trips — and must never
   crash, whichever bytes it maps. *)

let save_v3 path =
  let wt = Wtrie.Static.of_array (Array.map Binarize.to_bytes (sample 64)) in
  Wtrie.Static.save_file_exn wt path;
  wt

let expect_storage_error what r =
  match r with
  | Error (Wtrie.Storage_error _) -> ()
  | Error e ->
      Alcotest.fail
        (Format.asprintf "%s: unexpected error %a" what Wtrie.pp_error e)
  | Ok _ -> Alcotest.fail (Printf.sprintf "%s: load succeeded on a corrupted index" what)

let test_v3_bit_flips () =
  let path = tmp "flip_v3.wtx" in
  let wt = save_v3 path in
  let golden = Result.get_ok (Wtrie.Static.access wt ~pos:0) in
  let pristine = read_file path in
  let len = String.length pristine in
  let stride = max 1 (len / 509) in
  let off = ref 0 in
  while !off < len do
    write_file path (flip_bit pristine !off (!off mod 8));
    expect_storage_error
      (Printf.sprintf "v3 bit flip at offset %d/%d (copy)" !off len)
      (Wtrie.Static.open_file ~mode:`Copy path);
    (* mmap open skips the payload checksum: a flip may open, but then
       every query must either answer or error — never crash. *)
    (match Wtrie.Static.open_file ~mode:`Mmap path with
    | Error _ -> ()
    | Ok t ->
        for pos = 0 to Wtrie.Static.length t - 1 do
          match Wtrie.Static.access t ~pos with Ok _ | Error _ -> ()
        done;
        ignore (Wtrie.Static.rank t "s000-a" ~pos:3 : (int, Wtrie.error) result);
        Wtrie.Static.close t);
    off := !off + stride
  done;
  write_file path pristine;
  let reopened = Wtrie.Static.open_file_exn ~mode:`Copy path in
  Alcotest.(check string)
    "pristine v3 still loads" golden
    (Result.get_ok (Wtrie.Static.access reopened ~pos:0));
  Sys.remove path

let test_v3_truncations () =
  let path = tmp "cut_v3.wtx" in
  ignore (save_v3 path : Wtrie.Static.t);
  let pristine = read_file path in
  let len = String.length pristine in
  let stride = max 1 (len / 509) in
  let cut = ref 0 in
  while !cut < len do
    write_file path (String.sub pristine 0 !cut);
    expect_storage_error
      (Printf.sprintf "v3 truncated to %d/%d bytes (copy)" !cut len)
      (Wtrie.Static.open_file ~mode:`Copy path);
    expect_storage_error
      (Printf.sprintf "v3 truncated to %d/%d bytes (mmap)" !cut len)
      (Wtrie.Static.open_file ~mode:`Mmap path);
    cut := !cut + stride
  done;
  write_file path pristine;
  let t = Wtrie.Static.open_file_exn path in
  check_int "pristine v3 length" 64 (Wtrie.Static.length t);
  Wtrie.Static.close t;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* WAL sweeps *)

let base_inputs = List.init 10 (fun i -> Printf.sprintf "input-%02d-%s" i (String.make (i mod 5) 'x'))

let wal_tag = "durable-append"

(* End offset (within wal.log) of each record, in order. *)
let record_ends inputs =
  let hs = Wal.header_size ~tag:wal_tag in
  List.rev
    (snd
       (List.fold_left
          (fun (off, acc) s ->
            let off' = off + Wal.record_size (Wal.Append s) in
            (off', off' :: acc))
          (hs, []) inputs))

let build_base_store dir =
  rm_rf dir;
  let t = Durable.create ~checkpoint_bytes:max_int ~variant:`Append dir in
  List.iter (Durable.append t) base_inputs;
  Durable.close t

(* Truncate the WAL at EVERY byte offset: recovery must see exactly the
   records wholly inside the prefix, the store must reopen, accept an
   append, and verify clean. *)
let test_wal_truncation_sweep () =
  let base = fresh_dir "wal_cut_base" in
  build_base_store base;
  let dir = fresh_dir "wal_cut" in
  let hs = Wal.header_size ~tag:wal_tag in
  let ends = record_ends base_inputs in
  let pristine_wal = read_file (Filename.concat base "wal.log") in
  let w = String.length pristine_wal in
  check_int "wal length matches record arithmetic" (List.nth ends (List.length ends - 1)) w;
  for cut = 0 to w do
    copy_store base dir;
    write_file (Filename.concat dir "wal.log") (String.sub pristine_wal 0 cut);
    let expected =
      if cut < hs then 0 else List.length (List.filter (fun e -> e <= cut) ends)
    in
    let ctx fmt = Printf.ksprintf (fun m -> Printf.sprintf "cut %d/%d: %s" cut w m) fmt in
    (* read-only verification first *)
    let rep = Durable.verify dir in
    check_int (ctx "verified length") expected rep.Durable.v_length;
    check_bool (ctx "wal reset flag") (cut < hs) rep.Durable.v_wal_reset;
    let boundary = cut >= hs && (cut = hs || List.mem cut ends) in
    check_bool (ctx "clean flag") boundary rep.Durable.v_clean;
    (* then a real recovery: truncate the tail, keep working *)
    let t, r = Durable.open_ ~checkpoint_bytes:max_int dir in
    check_int (ctx "replayed") expected r.Durable.replayed;
    check_int (ctx "recovered length") expected (Durable.length t);
    List.iteri
      (fun i s -> if i < expected then check_string (ctx "content %d" i) s (Durable.access t i))
      base_inputs;
    Durable.append t "post-recovery";
    Durable.close t;
    let rep' = Durable.verify dir in
    check_bool (ctx "clean after recovery") true rep'.Durable.v_clean;
    check_int (ctx "length after recovery") (expected + 1) rep'.Durable.v_length
  done;
  rm_rf dir;
  rm_rf base

(* Flip one bit at EVERY byte offset of the WAL: a flip in the header
   discards the log (already-absorbed semantics), a flip in record [j]
   recovers exactly records [0..j-1].  Never an exception. *)
let test_wal_bit_flip_sweep () =
  let base = fresh_dir "wal_flip_base" in
  build_base_store base;
  let dir = fresh_dir "wal_flip" in
  let hs = Wal.header_size ~tag:wal_tag in
  let ends = record_ends base_inputs in
  let pristine_wal = read_file (Filename.concat base "wal.log") in
  let w = String.length pristine_wal in
  for off = 0 to w - 1 do
    copy_store base dir;
    write_file (Filename.concat dir "wal.log") (flip_bit pristine_wal off (off mod 8));
    let expected =
      if off < hs then 0
      else List.length (List.filter (fun e -> e <= off) ends)
      (* = index of the record containing [off]: all records before it *)
    in
    let ctx m = Printf.sprintf "flip at %d/%d: %s" off w m in
    let rep = Durable.verify dir in
    check_bool (ctx "wal reset flag") (off < hs) rep.Durable.v_wal_reset;
    check_int (ctx "verified length") expected rep.Durable.v_length;
    check_bool (ctx "not clean") false rep.Durable.v_clean;
    (* recover -> verify round-trips to clean *)
    let r = Durable.recover dir in
    check_int (ctx "replayed") expected r.Durable.replayed;
    check_bool (ctx "checkpointed") true r.Durable.checkpointed;
    let rep' = Durable.verify dir in
    check_bool (ctx "clean after recover") true rep'.Durable.v_clean;
    check_int (ctx "length after recover") expected rep'.Durable.v_length
  done;
  rm_rf dir;
  rm_rf base

(* ------------------------------------------------------------------ *)
(* Injected crashes *)

(* Crash after every possible byte budget while appending: every append
   that returned must survive recovery, the torn one must vanish, and
   the store must stay appendable. *)
let test_crash_during_appends () =
  let base = fresh_dir "crash_app_base" in
  build_base_store base;
  let dir = fresh_dir "crash_app" in
  let extra = List.init 6 (fun i -> Printf.sprintf "extra-%d" i) in
  let extra_bytes =
    List.fold_left (fun acc s -> acc + Wal.record_size (Wal.Append s)) 0 extra
  in
  let n_base = List.length base_inputs in
  for budget = 0 to extra_bytes + 4 do
    copy_store base dir;
    let t, _ = Durable.open_ ~checkpoint_bytes:max_int dir in
    Fault.arm_crash_after_bytes budget;
    let successes = ref 0 in
    (try List.iter (fun s -> Durable.append t s; incr successes) extra
     with Fault.Injected_crash _ -> ());
    Fault.disarm ();
    (* releasing the fd writes nothing further; the torn tail stays *)
    Durable.close t;
    let ctx m = Printf.sprintf "budget %d: %s" budget m in
    let rep = Durable.verify dir in
    check_int (ctx "durable prefix") (n_base + !successes) rep.Durable.v_length;
    let r = Durable.recover dir in
    check_int (ctx "replayed") (n_base + !successes) r.Durable.replayed;
    let rep' = Durable.verify dir in
    check_bool (ctx "clean after recover") true rep'.Durable.v_clean;
    check_int (ctx "length after recover") (n_base + !successes) rep'.Durable.v_length;
    (* contents: base then the surviving extras, in order *)
    let got = store_contents dir in
    let want = base_inputs @ List.filteri (fun i _ -> i < !successes) extra in
    check_bool (ctx "contents") true (got = want)
  done;
  rm_rf dir;
  rm_rf base

(* Crash at a sweep of byte budgets inside [checkpoint]: whether the
   crash lands in the snapshot temp file, between snapshot and WAL
   reset, or inside the new WAL header, recovery must produce the full
   pre-checkpoint state.  This is the no-lost-updates core guarantee. *)
let test_crash_during_checkpoint () =
  let base = fresh_dir "crash_ckpt_base" in
  build_base_store base;
  (* measure how many budgeted bytes a full checkpoint writes *)
  let measure = fresh_dir "crash_ckpt_measure" in
  copy_store base measure;
  let tm, _ = Durable.open_ ~checkpoint_bytes:max_int measure in
  Durable.checkpoint tm;
  Durable.close tm;
  let snap_bytes = (Unix.stat (Filename.concat measure "snapshot.wtx")).Unix.st_size in
  rm_rf measure;
  let total = snap_bytes + Wal.header_size ~tag:wal_tag in
  let dir = fresh_dir "crash_ckpt" in
  let step = max 1 (total / 61) in
  let budget = ref 0 in
  while !budget <= total + step do
    copy_store base dir;
    let t, _ = Durable.open_ ~checkpoint_bytes:max_int dir in
    Fault.arm_crash_after_bytes !budget;
    let crashed =
      match Durable.checkpoint t with
      | () -> false
      | exception Fault.Injected_crash _ -> true
    in
    Fault.disarm ();
    Durable.close t;
    let ctx m = Printf.sprintf "budget %d/%d (crashed=%b): %s" !budget total crashed m in
    ignore (Durable.recover dir : Durable.recovery);
    let rep = Durable.verify dir in
    check_bool (ctx "clean after recover") true rep.Durable.v_clean;
    check_int (ctx "no lost updates") (List.length base_inputs) rep.Durable.v_length;
    check_bool (ctx "contents intact") true (store_contents dir = base_inputs);
    budget := !budget + step
  done;
  rm_rf dir;
  rm_rf base

(* ------------------------------------------------------------------ *)
(* Randomized dynamic workload vs. an in-memory oracle *)

type sim_op = S_append of string | S_insert of int * string | S_delete of int

let rec insert_at l pos x =
  if pos = 0 then x :: l
  else match l with [] -> invalid_arg "insert_at" | y :: tl -> y :: insert_at tl (pos - 1) x

let rec delete_at l pos =
  match l with
  | [] -> invalid_arg "delete_at"
  | y :: tl -> if pos = 0 then tl else y :: delete_at tl (pos - 1)

let apply_sim oracle = function
  | S_append s -> oracle @ [ s ]
  | S_insert (p, s) -> insert_at oracle p s
  | S_delete p -> delete_at oracle p

let apply_durable t = function
  | S_append s -> Durable.append t s
  | S_insert (p, s) -> Durable.insert t p s
  | S_delete p -> Durable.delete t p

(* Mixed append/insert/delete on a dynamic store with a small checkpoint
   threshold (so crashes also land inside automatic checkpoints), a
   crash armed every round.  A crashed op is allowed to be either torn
   (absent) or durable (present, when the crash hit the checkpoint after
   the op was logged) — anything else fails the test. *)
let test_dynamic_oracle_crashes () =
  let rng = Xoshiro.create 99 in
  let dir = fresh_dir "oracle" in
  let t = ref (Durable.create ~checkpoint_bytes:512 ~variant:`Dynamic dir) in
  let oracle = ref [] in
  let counter = ref 0 in
  let gen_op () =
    let len = List.length !oracle in
    incr counter;
    let s = Printf.sprintf "dyn-%04d" !counter in
    match Xoshiro.int rng 10 with
    | 0 | 1 | 2 | 3 | 4 -> S_append s
    | 5 | 6 -> S_insert (Xoshiro.int rng (len + 1), s)
    | _ -> if len = 0 then S_append s else S_delete (Xoshiro.int rng len)
  in
  for round = 1 to 12 do
    for _ = 1 to 10 do
      let op = gen_op () in
      apply_durable !t op;
      oracle := apply_sim !oracle op
    done;
    Fault.arm_crash_after_bytes (1 + Xoshiro.int rng 96);
    let pending = ref None in
    (try
       while true do
         let op = gen_op () in
         pending := Some op;
         apply_durable !t op;
         oracle := apply_sim !oracle op;
         pending := None
       done
     with Fault.Injected_crash _ -> ());
    Fault.disarm ();
    Durable.close !t;
    ignore (Durable.recover dir : Durable.recovery);
    let rep = Durable.verify dir in
    check_bool (Printf.sprintf "round %d: clean after recover" round) true rep.Durable.v_clean;
    let t', _ = Durable.open_ ~checkpoint_bytes:512 dir in
    t := t';
    let got = List.init (Durable.length t') (Durable.access t') in
    let candidates =
      !oracle
      ::
      (match !pending with
      | None -> []
      | Some op -> ( match apply_sim !oracle op with l -> [ l ] | exception _ -> []))
    in
    (match List.find_opt (fun c -> c = got) candidates with
    | Some c -> oracle := c
    | None ->
        Alcotest.fail
          (Printf.sprintf "round %d: recovered state (len %d) matches neither oracle (len %d)"
             round (List.length got) (List.length !oracle)))
  done;
  Durable.close !t;
  check_bool "final contents" true (store_contents dir = !oracle);
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Edge cases: garbage, missing files, future generations, probes *)

let test_edge_cases () =
  let base = fresh_dir "edge_base" in
  rm_rf base;
  let t = Durable.create ~variant:`Append base in
  Durable.append t "alpha";
  Durable.append t "beta";
  Durable.close t;
  let dir = fresh_dir "edge" in
  let expect_fe what f =
    match f () with
    | exception Durable.Format_error _ -> ()
    | exception e ->
        Alcotest.fail (Printf.sprintf "%s: unexpected exception %s" what (Printexc.to_string e))
    | _ -> Alcotest.fail (Printf.sprintf "%s: expected Format_error" what)
  in
  (* a deleted WAL is recoverable: the log resets, the snapshot stands *)
  copy_store base dir;
  Sys.remove (Filename.concat dir "wal.log");
  let rep = Durable.verify dir in
  check_bool "missing wal -> reset" true rep.Durable.v_wal_reset;
  check_int "missing wal -> snapshot state" 0 rep.Durable.v_length;
  let t, r = Durable.open_ dir in
  check_bool "missing wal -> reset on open" true r.Durable.wal_reset;
  Durable.append t "fresh";
  Durable.close t;
  check_bool "recreated wal -> clean" true (Durable.verify dir).Durable.v_clean;
  (* garbage where the snapshot should be fails loudly *)
  copy_store base dir;
  write_file (Filename.concat dir "snapshot.wtx") "garbage, not a container";
  expect_fe "garbage snapshot" (fun () -> ignore (Durable.verify dir : Durable.verify_report));
  (* a WAL from the future (generation ahead of the snapshot) is corrupt *)
  copy_store base dir;
  Wal.create ~tag:wal_tag ~generation:7 (Filename.concat dir "wal.log");
  expect_fe "future-generation wal" (fun () -> ignore (Durable.verify dir : Durable.verify_report));
  (* a stale-generation WAL is discarded, never replayed twice *)
  copy_store base dir;
  let t, _ = Durable.open_ ~checkpoint_bytes:max_int dir in
  Durable.checkpoint t;
  Durable.close t;
  write_file (Filename.concat dir "wal.log") (read_file (Filename.concat base "wal.log"));
  let rep = Durable.verify dir in
  check_bool "stale wal -> reset" true rep.Durable.v_wal_reset;
  check_int "stale wal -> not replayed" 2 rep.Durable.v_length;
  check_int "stale wal -> zero records counted" 0 rep.Durable.v_wal_records;
  (* not a store at all *)
  rm_rf dir;
  Sys.mkdir dir 0o755;
  check_bool "empty dir is not a store" false (Durable.is_store dir);
  expect_fe "empty dir" (fun () -> ignore (Durable.verify dir : Durable.verify_report));
  (* recovery work lands in the obs probes *)
  copy_store base dir;
  let wal = read_file (Filename.concat dir "wal.log") in
  write_file (Filename.concat dir "wal.log") (String.sub wal 0 (String.length wal - 3));
  Wt_obs.Probe.enable ();
  Wt_obs.Probe.reset ();
  let t, r = Durable.open_ dir in
  check_int "probe: replayed records" 1 (Wt_obs.Probe.counter Wt_obs.Metric.Durable_wal_replay);
  check_bool "probe: dropped bytes" true
    (Wt_obs.Probe.counter Wt_obs.Metric.Durable_wal_dropped_bytes = r.Durable.dropped_bytes
    && r.Durable.dropped_bytes > 0);
  Durable.close t;
  Wt_obs.Probe.disable ();
  rm_rf dir;
  rm_rf base

(* ------------------------------------------------------------------ *)
(* Tiered store: crashes inside the compaction commit protocol, and
   corruption sweeps over the manifest and run containers.

   The commit writes, in order: the run container, the rotated WAL
   (generation g+1), the manifest (generation g+1) — each atomically.
   A crash at ANY byte budget through that sequence must recover to the
   full acknowledged ingest set: no lost string, no duplicate, and
   [recover] -> [verify] must round-trip to a clean store. *)

module Tiered = Wtrie.Tiered

let tiered_inputs = List.init 12 (fun i -> Printf.sprintf "t-%02d-%s" i (String.make (i mod 4) 'y'))

let copy_dir src dst =
  rm_rf dst;
  Sys.mkdir dst 0o755;
  Array.iter
    (fun f -> write_file (Filename.concat dst f) (read_file (Filename.concat src f)))
    (Sys.readdir src)

(* A base store with everything still in the delta (threshold never
   reached), flushed and closed: the compaction under test does all
   three commit steps from here. *)
let build_tiered_base dir =
  rm_rf dir;
  let t = Tiered.create ~threshold:max_int dir in
  List.iter (Tiered.ingest t) tiered_inputs;
  Tiered.flush t;
  Tiered.close t

let tiered_contents dir =
  let t, _ = Tiered.open_read_only ~verify:true dir in
  Fun.protect
    ~finally:(fun () -> Tiered.close t)
    (fun () ->
      List.init (Tiered.length t) (fun pos -> Result.get_ok (Tiered.access t ~pos)))

(* Compact [base] into [measure] once, fault-free, to learn the byte
   cost of each commit step (every write goes through the budgeted
   [Fault.output_string], so file sizes are budget arithmetic). *)
let measure_compaction base measure =
  copy_dir base measure;
  let tm, _ = Tiered.open_ ~threshold:max_int measure in
  Tiered.compact tm;
  Tiered.close tm;
  let sz f = (Unix.stat (Filename.concat measure f)).Unix.st_size in
  (sz "run-000000.wtx", sz "wal.log", sz "manifest.wtx")

let test_tiered_compaction_crash_sweep () =
  let base = fresh_dir "tiered_crash_base" in
  build_tiered_base base;
  let measure = fresh_dir "tiered_crash_measure" in
  let run_b, wal_b, man_b = measure_compaction base measure in
  rm_rf measure;
  let total = run_b + wal_b + man_b in
  let dir = fresh_dir "tiered_crash" in
  let n = List.length tiered_inputs in
  let crashes = ref 0 and completions = ref 0 and rolled = ref 0 in
  (* a stride plus pinned budgets inside each commit window, so the
     sweep provably hits all three crash sites *)
  let budgets =
    List.sort_uniq compare
      (List.init 62 (fun i -> i * max 1 (total / 60))
      @ [ 0; run_b - 1; run_b; run_b + 1; run_b + wal_b - 1; run_b + wal_b;
          run_b + wal_b + 1; total - 1; total; total + 64 ])
  in
  List.iter
    (fun budget ->
      if budget >= 0 then begin
        copy_dir base dir;
        let t, _ = Tiered.open_ ~threshold:max_int dir in
        Fault.arm_crash_after_bytes budget;
        let crashed =
          match Tiered.compact t with
          | () -> false
          | exception Fault.Injected_crash _ -> true
        in
        Fault.disarm ();
        Tiered.close t;
        incr (if crashed then crashes else completions);
        let ctx m = Printf.sprintf "budget %d/%d (crashed=%b): %s" budget total crashed m in
        (* even before repair, no acknowledged ingest may be missing:
           every crash window leaves the records in the old WAL, the
           new WAL + pending run, or the committed run *)
        let rep0 = Tiered.verify dir in
        check_int (ctx "no lost ingest pre-recovery") n rep0.Tiered.v_length;
        check_bool (ctx "never a WAL reset") false rep0.Tiered.v_wal_reset;
        if rep0.Tiered.v_rolled_forward then incr rolled;
        check_bool (ctx "no duplicate pre-recovery") true (tiered_contents dir = tiered_inputs);
        (* repair: adopt/replay, compact the delta, land clean *)
        let r = Tiered.recover dir in
        check_bool (ctx "recover never resets the WAL") false r.Tiered.r_wal_reset;
        let rep = Tiered.verify dir in
        check_bool (ctx "clean after recover") true rep.Tiered.v_clean;
        check_int (ctx "no lost ingest") n rep.Tiered.v_length;
        check_bool (ctx "exactly one run generation") true (rep.Tiered.v_runs = 1);
        check_int (ctx "delta fully compacted") 0 rep.Tiered.v_wal_records;
        check_bool (ctx "contents") true (tiered_contents dir = tiered_inputs)
      end)
    budgets;
  (* the sweep must have exercised both outcomes, and the pinned budget
     between the WAL rotation and the manifest swap must have produced
     at least one roll-forward recovery *)
  check_bool "sweep saw crashes" true (!crashes > 0);
  check_bool "sweep saw completions" true (!completions > 0);
  check_bool "sweep saw a roll-forward window" true (!rolled > 0);
  rm_rf dir;
  rm_rf base

(* Bit-flip and truncation sweeps over the manifest: every corrupted
   byte must fail closed as [Format_error] — the CRC leaves no silent
   window — and the pristine bytes must still open. *)
let test_tiered_manifest_sweeps () =
  let base = fresh_dir "tiered_man_base" in
  build_tiered_base base;
  let t, _ = Tiered.open_ ~threshold:max_int base in
  Tiered.compact t;
  Tiered.close t;
  let dir = fresh_dir "tiered_man" in
  let man = Filename.concat dir "manifest.wtx" in
  let pristine = read_file (Filename.concat base "manifest.wtx") in
  let len = String.length pristine in
  for off = 0 to len - 1 do
    copy_dir base dir;
    write_file man (flip_bit pristine off (off mod 8));
    expect_format_error
      (Printf.sprintf "manifest bit flip at %d/%d" off len)
      (fun () -> ignore (Tiered.verify dir : Tiered.verify_report))
  done;
  for cut = 0 to len - 1 do
    copy_dir base dir;
    write_file man (String.sub pristine 0 cut);
    expect_format_error
      (Printf.sprintf "manifest truncated to %d/%d" cut len)
      (fun () -> ignore (Tiered.verify dir : Tiered.verify_report))
  done;
  copy_dir base dir;
  check_bool "pristine manifest verifies" true (Tiered.verify dir).Tiered.v_clean;
  rm_rf dir;
  rm_rf base

(* The same sweeps over a committed run file: [verify] re-reads runs
   through the checksummed copy path, so corruption anywhere in the run
   container must surface as [Format_error]. *)
let test_tiered_run_sweeps () =
  let base = fresh_dir "tiered_run_base" in
  build_tiered_base base;
  let t, _ = Tiered.open_ ~threshold:max_int base in
  Tiered.compact t;
  Tiered.close t;
  let dir = fresh_dir "tiered_run" in
  let run = Filename.concat dir "run-000000.wtx" in
  let pristine = read_file (Filename.concat base "run-000000.wtx") in
  let len = String.length pristine in
  let stride = max 1 (len / 251) in
  let off = ref 0 in
  while !off < len do
    copy_dir base dir;
    write_file run (flip_bit pristine !off (!off mod 8));
    expect_format_error
      (Printf.sprintf "run bit flip at %d/%d" !off len)
      (fun () -> ignore (Tiered.verify dir : Tiered.verify_report));
    off := !off + stride
  done;
  let cut = ref 0 in
  while !cut < len do
    copy_dir base dir;
    write_file run (String.sub pristine 0 !cut);
    expect_format_error
      (Printf.sprintf "run truncated to %d/%d" !cut len)
      (fun () -> ignore (Tiered.verify dir : Tiered.verify_report));
    cut := !cut + stride
  done;
  (* a deleted run named by the manifest is equally fatal *)
  copy_dir base dir;
  Sys.remove run;
  expect_format_error "missing run" (fun () ->
      ignore (Tiered.verify dir : Tiered.verify_report));
  copy_dir base dir;
  check_bool "pristine run verifies" true (Tiered.verify dir).Tiered.v_clean;
  rm_rf dir;
  rm_rf base

(* Deterministic reconstructions of each recovery class, plus WAL-tail
   damage on the tiered log. *)
let test_tiered_recovery_classes () =
  let base = fresh_dir "tiered_cls_base" in
  build_tiered_base base;
  (* the fully-committed "after" state of one compaction *)
  let after = fresh_dir "tiered_cls_after" in
  ignore (measure_compaction base after : int * int * int);
  let dir = fresh_dir "tiered_cls" in
  let n = List.length tiered_inputs in
  let file d f = Filename.concat d f in
  (* roll-forward: run + rotated WAL landed, manifest swap did not *)
  copy_dir base dir;
  write_file (file dir "wal.log") (read_file (file after "wal.log"));
  write_file (file dir "run-000000.wtx") (read_file (file after "run-000000.wtx"));
  let rep = Tiered.verify dir in
  check_bool "roll-forward classified" true rep.Tiered.v_rolled_forward;
  check_bool "roll-forward not clean" false rep.Tiered.v_clean;
  check_int "roll-forward keeps everything" n rep.Tiered.v_length;
  let t, r = Tiered.open_ dir in
  check_bool "open completes the commit" true r.Tiered.r_rolled_forward;
  check_int "adopted generation" 1 (Tiered.generation t);
  Tiered.close t;
  check_bool "clean after adoption" true (Tiered.verify dir).Tiered.v_clean;
  check_bool "contents after adoption" true (tiered_contents dir = tiered_inputs);
  (* rotated WAL without the pending run: unrecoverable, fail closed *)
  copy_dir base dir;
  write_file (file dir "wal.log") (read_file (file after "wal.log"));
  expect_format_error "missing pending run" (fun () ->
      ignore (Tiered.verify dir : Tiered.verify_report));
  (* stale WAL (behind the manifest): discarded, never replayed twice *)
  copy_dir after dir;
  write_file (file dir "wal.log") (read_file (file base "wal.log"));
  let rep = Tiered.verify dir in
  check_bool "stale wal -> reset" true rep.Tiered.v_wal_reset;
  check_int "stale wal -> run state only" n rep.Tiered.v_length;
  check_int "stale wal -> nothing replayed" 0 rep.Tiered.v_wal_records;
  ignore (Tiered.recover dir : Tiered.recovery);
  check_bool "clean after stale-wal recover" true (Tiered.verify dir).Tiered.v_clean;
  check_bool "no duplicates after stale-wal recover" true (tiered_contents dir = tiered_inputs);
  (* torn WAL tail: the intact prefix replays, the tail is dropped *)
  copy_dir base dir;
  let wal = read_file (file dir "wal.log") in
  write_file (file dir "wal.log") (String.sub wal 0 (String.length wal - 5));
  let rep = Tiered.verify dir in
  check_bool "torn tail not clean" false rep.Tiered.v_clean;
  check_int "torn tail drops one record" (n - 1) rep.Tiered.v_wal_records;
  check_bool "torn tail counts dropped bytes" true (rep.Tiered.v_dropped_bytes > 0);
  let r = Tiered.recover dir in
  check_int "torn tail replays the prefix" (n - 1) r.Tiered.r_replayed;
  check_bool "clean after torn-tail recover" true (Tiered.verify dir).Tiered.v_clean;
  (* an orphan run (crash before the WAL rotation) is swept on open *)
  copy_dir base dir;
  write_file (file dir "run-000000.wtx") (read_file (file after "run-000000.wtx"));
  let t, _ = Tiered.open_ dir in
  Tiered.close t;
  check_bool "orphan run deleted" false (Sys.file_exists (file dir "run-000000.wtx"));
  check_bool "contents unaffected by orphan" true (tiered_contents dir = tiered_inputs);
  rm_rf dir;
  rm_rf after;
  rm_rf base

let () =
  Alcotest.run "wt_faults"
    [
      ( "snapshot",
        [
          Alcotest.test_case "bit-flip sweep" `Quick test_snapshot_bit_flips;
          Alcotest.test_case "truncation sweep" `Quick test_snapshot_truncations;
        ] );
      ( "v3 arena",
        [
          Alcotest.test_case "bit-flip sweep" `Quick test_v3_bit_flips;
          Alcotest.test_case "truncation sweep" `Quick test_v3_truncations;
        ] );
      ( "wal",
        [
          Alcotest.test_case "truncation sweep (every offset)" `Quick test_wal_truncation_sweep;
          Alcotest.test_case "bit-flip sweep (every offset)" `Quick test_wal_bit_flip_sweep;
        ] );
      ( "crash",
        [
          Alcotest.test_case "torn appends (every budget)" `Quick test_crash_during_appends;
          Alcotest.test_case "checkpoint crash sweep" `Quick test_crash_during_checkpoint;
          Alcotest.test_case "dynamic workload vs oracle" `Quick test_dynamic_oracle_crashes;
        ] );
      ("edges", [ Alcotest.test_case "garbage, stale, probes" `Quick test_edge_cases ]);
      ( "tiered",
        [
          Alcotest.test_case "compaction crash sweep" `Quick test_tiered_compaction_crash_sweep;
          Alcotest.test_case "manifest corruption sweeps" `Quick test_tiered_manifest_sweeps;
          Alcotest.test_case "run corruption sweeps" `Quick test_tiered_run_sweeps;
          Alcotest.test_case "recovery classes" `Quick test_tiered_recovery_classes;
        ] );
    ]
