(* The serving front-end under test: the wire codec is fuzzed (random
   bytes, truncations, bit flips — decode must be total; encode∘decode
   must be the identity), and a live server on a loopback socket is
   held to an oracle — every reply must equal what the in-process batch
   engine returns for the same operation — while clients misbehave
   around it: garbage frames, absurd declared lengths, mid-frame
   disconnects, overload past the admission watermark, and deadlines
   shorter than the batching window.  The server must shed and expire
   loudly (Overloaded / Deadline_exceeded), keep serving afterwards,
   and drain cleanly on request_stop. *)

module Xoshiro = Wt_bits.Xoshiro
module Is = Wt_core.Indexed_sequence
module Snapshot = Wt_par.Snapshot
module Wire = Wt_serve.Wire
module Batcher = Wt_serve.Batcher
module Server = Wt_serve.Server
module Client = Wt_serve.Client

(* ------------------------------------------------------------------ *)
(* Generators *)

let gen_string rng =
  let n = Xoshiro.int rng 12 in
  String.init n (fun _ -> Char.chr (Xoshiro.int rng 256))

let gen_op rng =
  match Xoshiro.int rng 5 with
  | 0 -> Is.Access { pos = Xoshiro.int rng 2000 - 100 }
  | 1 -> Is.Rank { s = gen_string rng; pos = Xoshiro.int rng 2000 - 100 }
  | 2 -> Is.Select { s = gen_string rng; count = Xoshiro.int rng 20 - 5 }
  | 3 -> Is.Rank_prefix { prefix = gen_string rng; pos = Xoshiro.int rng 2000 - 100 }
  | _ -> Is.Select_prefix { prefix = gen_string rng; count = Xoshiro.int rng 20 - 5 }

let gen_body rng =
  match Xoshiro.int rng 8 with 0 -> Wire.Ping | 1 -> Wire.Length | _ -> Wire.Query (gen_op rng)

let gen_request rng =
  {
    Wire.id = Xoshiro.int rng 1_000_000;
    timeout_us = (if Xoshiro.int rng 4 = 0 then Xoshiro.int rng 10_000 else 0);
    body = gen_body rng;
  }

let gen_status rng =
  match Xoshiro.int rng 8 with
  | 0 -> Wire.Ok_value (Is.Int (Xoshiro.int rng 10_000 - 5_000))
  | 1 -> Wire.Ok_value (Is.Str (gen_string rng))
  | 2 -> Wire.Pong
  | 3 ->
      Wire.Query_error
        (Is.Position_out_of_bounds { pos = Xoshiro.int rng 100 - 50; len = Xoshiro.int rng 100 })
  | 4 -> Wire.Query_error (Is.Negative_count { count = Xoshiro.int rng 100 - 99 })
  | 5 ->
      Wire.Query_error
        (Is.No_occurrence { count = Xoshiro.int rng 100; occurrences = Xoshiro.int rng 100 })
  | 6 -> Wire.Overloaded
  | _ -> if Xoshiro.int rng 2 = 0 then Wire.Deadline_exceeded else Wire.Bad_request (gen_string rng)

let payload_of_frame s = String.sub s 4 (String.length s - 4)

(* ------------------------------------------------------------------ *)
(* Wire codec *)

let test_request_roundtrip () =
  let rng = Xoshiro.create 11 in
  for _ = 1 to 2_000 do
    let r = gen_request rng in
    match Wire.decode_request (payload_of_frame (Wire.encode_request r)) with
    | Ok r' -> Alcotest.(check bool) "request round-trips" true (r = r')
    | Error m -> Alcotest.failf "round-trip rejected: %s" m
  done

let test_reply_roundtrip () =
  let rng = Xoshiro.create 12 in
  for _ = 1 to 2_000 do
    let r = { Wire.rid = Xoshiro.int rng 1_000_000; status = gen_status rng } in
    match Wire.decode_reply (payload_of_frame (Wire.encode_reply r)) with
    | Ok r' -> Alcotest.(check bool) "reply round-trips" true (r = r')
    | Error m -> Alcotest.failf "round-trip rejected: %s" m
  done

(* decode is total: arbitrary bytes, truncations and bit flips of valid
   payloads may be rejected but must never raise *)
let decode_total =
  QCheck.Test.make ~count:2_000 ~name:"decode never raises on arbitrary bytes"
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s ->
      (match Wire.decode_request s with Ok _ | Error _ -> ());
      (match Wire.decode_reply s with Ok _ | Error _ -> ());
      true)

let test_decode_corrupted_total () =
  let rng = Xoshiro.create 13 in
  for _ = 1 to 2_000 do
    let p = payload_of_frame (Wire.encode_request (gen_request rng)) in
    let p =
      match Xoshiro.int rng 3 with
      | 0 -> String.sub p 0 (Xoshiro.int rng (String.length p + 1)) (* truncate *)
      | 1 ->
          let b = Bytes.of_string p in
          let i = Xoshiro.int rng (Bytes.length b) in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Xoshiro.int rng 8)));
          Bytes.to_string b
      | _ -> p ^ gen_string rng (* trailing junk *)
    in
    match Wire.decode_request p with Ok _ | Error _ -> ()
  done

(* the incremental reader recovers exactly the sent frames regardless of
   how the byte stream is chopped up *)
let test_reader_chunked () =
  let rng = Xoshiro.create 14 in
  for _ = 1 to 200 do
    let reqs = Array.init (1 + Xoshiro.int rng 20) (fun _ -> gen_request rng) in
    let stream = String.concat "" (Array.to_list (Array.map Wire.encode_request reqs)) in
    let rd = Wire.reader () in
    let got = ref [] in
    let pos = ref 0 in
    while !pos < String.length stream do
      let n = min (1 + Xoshiro.int rng 40) (String.length stream - !pos) in
      Wire.feed rd (Bytes.of_string stream) !pos n;
      pos := !pos + n;
      let continue = ref true in
      while !continue do
        match Wire.next rd with
        | Wire.Frame p -> got := p :: !got
        | Wire.Need_more -> continue := false
        | Wire.Broken m -> Alcotest.failf "clean stream broke: %s" m
      done
    done;
    let got = Array.of_list (List.rev !got) in
    Alcotest.(check int) "frame count" (Array.length reqs) (Array.length got);
    Array.iteri
      (fun i p ->
        Alcotest.(check bool) "frame payload" true
          (Wire.decode_request p = Ok reqs.(i)))
      got
  done

(* a reader fed arbitrary garbage never raises and never allocates a
   frame bigger than max_frame *)
let reader_garbage_total =
  QCheck.Test.make ~count:500 ~name:"reader survives garbage streams"
    QCheck.(string_of_size Gen.(0 -- 256))
    (fun s ->
      let rd = Wire.reader ~max_frame:64 () in
      Wire.feed rd (Bytes.of_string s) 0 (String.length s);
      let continue = ref true in
      while !continue do
        match Wire.next rd with
        | Wire.Frame p ->
            if String.length p > 64 then failwith "oversized frame escaped";
            ()
        | Wire.Need_more | Wire.Broken _ -> continue := false
      done;
      true)

let test_reader_rejects_absurd_length () =
  let rd = Wire.reader ~max_frame:1024 () in
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 0x7FFFFFFFl;
  Wire.feed rd b 0 4;
  (match Wire.next rd with
  | Wire.Broken _ -> ()
  | Wire.Frame _ | Wire.Need_more -> Alcotest.fail "absurd length not rejected at the header");
  (* and the stream stays broken *)
  match Wire.next rd with
  | Wire.Broken _ -> ()
  | _ -> Alcotest.fail "broken stream resynchronised"

(* ------------------------------------------------------------------ *)
(* Batcher semantics (no sockets) *)

let test_batcher_admission_and_deadline () =
  let b = Batcher.create ~batch_max:4 ~window_ns:1_000_000 ~queue_max:3 () in
  let admit ~now ~dl i =
    Batcher.admit b ~now_ns:now ~key:i ~timeout_us:dl (Is.Access { pos = i })
  in
  Alcotest.(check bool) "admit 1" true (admit ~now:0 ~dl:0 1 = Batcher.Admitted);
  Alcotest.(check bool) "admit 2" true (admit ~now:0 ~dl:500 2 = Batcher.Admitted);
  Alcotest.(check bool) "admit 3" true (admit ~now:0 ~dl:0 3 = Batcher.Admitted);
  Alcotest.(check bool) "queue full sheds" true (admit ~now:0 ~dl:0 4 = Batcher.Overloaded);
  Alcotest.(check bool) "not due yet" false (Batcher.due b ~now_ns:1);
  (* the 500us deadline pulls the due instant below the 1ms window *)
  (match Batcher.due_at b with
  | Some d -> Alcotest.(check bool) "deadline pulls flush earlier" true (d < 1_000_000)
  | None -> Alcotest.fail "queue non-empty but no due instant");
  (* flush at t=600us: request 2 (deadline 500us) expired, others run *)
  let results =
    Batcher.flush b ~now_ns:600_000 ~exec:(fun ops -> Array.map (fun _ -> `Ran) ops)
  in
  Alcotest.(check int) "all accounted" 3 (Array.length results);
  Array.iter
    (fun (k, r) ->
      match (k, r) with
      | 2, None -> ()
      | 2, Some _ -> Alcotest.fail "expired op was executed"
      | _, Some `Ran -> ()
      | _, None -> Alcotest.fail "live op was expired")
    results;
  Alcotest.(check int) "queue drained" 0 (Batcher.pending b)

let test_batcher_batch_max_cut () =
  let b = Batcher.create ~batch_max:2 ~window_ns:1_000_000_000 ~queue_max:100 () in
  for i = 1 to 5 do
    ignore (Batcher.admit b ~now_ns:0 ~key:i ~timeout_us:0 (Is.Access { pos = i }))
  done;
  Alcotest.(check bool) "due at batch_max regardless of window" true (Batcher.due b ~now_ns:1);
  let r = Batcher.flush b ~now_ns:1 ~exec:(fun ops -> Array.map (fun _ -> ()) ops) in
  Alcotest.(check int) "cut at batch_max" 2 (Array.length r);
  Alcotest.(check int) "remainder queued" 3 (Batcher.pending b)

(* ------------------------------------------------------------------ *)
(* Live-server harness *)

let strings =
  Array.init 500 (fun i ->
      match i mod 5 with
      | 0 -> Printf.sprintf "alpha-%d" i
      | 1 -> Printf.sprintf "beta-%d" (i mod 7)
      | 2 -> "common"
      | 3 -> Printf.sprintf "alpha-%d" (i mod 3)
      | _ -> Printf.sprintf "gamma/%d/x" i)

let with_server ?(tweak = fun c -> c) f =
  let wt = Wtrie.Append.create () in
  Array.iter (Wtrie.Append.append wt) strings;
  let cfg = tweak { (Server.default_config ()) with port = 0; window_us = 100 } in
  let srv = Server.create ~config:cfg ~backend:Server.append_backend (Snapshot.create wt) in
  let d = Domain.spawn (fun () -> Server.serve srv) in
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop srv;
      Domain.join d)
    (fun () -> f wt srv)

let oracle wt op = (Wt_exec.Exec.Append.query_batch wt [| op |]).(0)

let status_of_result = function
  | Ok v -> Wire.Ok_value v
  | Error e -> Wire.Query_error e

(* every socket reply equals the in-process engine's answer, including
   the error cases *)
let test_oracle_sequential () =
  with_server (fun wt srv ->
      let c = Client.connect ~host:"127.0.0.1" ~port:(Server.port srv) () in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      Alcotest.(check bool) "ping" true (Client.ping c);
      Alcotest.(check int) "length" (Array.length strings) (Client.length c);
      let rng = Xoshiro.create 21 in
      for _ = 1 to 300 do
        let op = gen_op rng in
        let got = Client.call c (Wire.Query op) in
        Alcotest.(check bool) "socket reply = engine result" true
          (got = status_of_result (oracle wt op))
      done)

let test_oracle_concurrent_clients () =
  with_server ~tweak:(fun c -> { c with domains = Some 2 }) (fun wt srv ->
      let port = Server.port srv in
      let worker seed () =
        let c = Client.connect ~host:"127.0.0.1" ~port () in
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        let rng = Xoshiro.create seed in
        let bad = ref 0 in
        for _ = 1 to 200 do
          let op = gen_op rng in
          if Client.call c (Wire.Query op) <> status_of_result (oracle wt op) then incr bad
        done;
        !bad
      in
      let ds = List.map (fun s -> Domain.spawn (worker s)) [ 31; 32; 33 ] in
      let bad = List.fold_left (fun acc d -> acc + Domain.join d) 0 ds in
      Alcotest.(check int) "all concurrent replies match the oracle" 0 bad)

(* ------------------------------------------------------------------ *)
(* Defensive handling *)

let raw_connect srv =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port srv));
  fd

(* read until EOF or timeout; returns collected bytes and whether the
   peer closed *)
let read_until_eof ?(timeout = 5.0) fd =
  let buf = Buffer.create 256 in
  let scratch = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. timeout in
  let eof = ref false in
  let continue = ref true in
  while !continue do
    let left = deadline -. Unix.gettimeofday () in
    if left <= 0. then continue := false
    else
      match Unix.select [ fd ] [] [] left with
      | [], _, _ -> continue := false
      | _ -> (
          match Unix.read fd scratch 0 (Bytes.length scratch) with
          | 0 ->
              eof := true;
              continue := false
          | n -> Buffer.add_subbytes buf scratch 0 n
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
              eof := true;
              continue := false)
  done;
  (Buffer.contents buf, !eof)

let write_raw fd s = ignore (Unix.write_substring fd s 0 (String.length s))

let test_garbage_and_disconnects () =
  with_server (fun _wt srv ->
      (* absurd declared frame length: connection dies, server does not *)
      let fd = raw_connect srv in
      write_raw fd "\xFF\xFF\xFF\xFF garbage follows";
      let _, eof = read_until_eof fd in
      Alcotest.(check bool) "absurd length closes the connection" true eof;
      Unix.close fd;
      (* valid frame, undecodable payload: Bad_request reply, conn survives *)
      let c = Client.connect ~host:"127.0.0.1" ~port:(Server.port srv) () in
      let fd2 = raw_connect srv in
      write_raw fd2 "\x00\x00\x00\x03abc";
      let got, _ = read_until_eof ~timeout:2.0 fd2 in
      Alcotest.(check bool) "undecodable payload gets a reply" true (String.length got > 4);
      (match Wire.decode_reply (payload_of_frame got) with
      | Ok { Wire.status = Wire.Bad_request _; _ } -> ()
      | _ -> Alcotest.fail "expected Bad_request");
      Unix.close fd2;
      (* mid-frame disconnect: a frame header promising more than is sent *)
      let fd3 = raw_connect srv in
      write_raw fd3 "\x00\x00\x00\x40half";
      Unix.close fd3;
      (* the server is still healthy for well-behaved clients *)
      Alcotest.(check bool) "server alive after abuse" true (Client.ping c);
      Alcotest.(check int) "still serving" (Array.length strings) (Client.length c);
      Client.close c;
      let st = Server.stats srv in
      Alcotest.(check bool) "bad frames were counted" true (st.Server.bad_frames >= 2))

let test_slow_loris_reaped () =
  with_server ~tweak:(fun c -> { c with read_timeout_ms = 100 }) (fun _wt srv ->
      let fd = raw_connect srv in
      (* a frame header, then silence: stalled mid-frame *)
      write_raw fd "\x00\x00\x00\x20";
      let _, eof = read_until_eof ~timeout:5.0 fd in
      Alcotest.(check bool) "stalled connection reaped" true eof;
      Unix.close fd;
      let c = Client.connect ~host:"127.0.0.1" ~port:(Server.port srv) () in
      Alcotest.(check bool) "server alive after reap" true (Client.ping c);
      Client.close c)

(* ------------------------------------------------------------------ *)
(* Overload and deadlines *)

let test_overload_sheds_and_recovers () =
  with_server
    ~tweak:(fun c -> { c with queue_max = 4; batch_max = 256; window_us = 20_000 })
    (fun wt srv ->
      let rng = Xoshiro.create 41 in
      let ops = Array.init 2_000 (fun _ -> gen_op rng) in
      let r =
        Client.run_load ~host:"127.0.0.1" ~port:(Server.port srv) ~conns:4 ~window:16
          ~ops:(Array.length ops)
          ~opgen:(fun i -> Wire.Query ops.(i))
          ()
      in
      Alcotest.(check int) "every request answered" r.Client.sent r.Client.completed;
      Alcotest.(check int) "none lost" 0 r.Client.lost;
      Alcotest.(check int) "no undecodable replies" 0 r.Client.bad;
      Alcotest.(check bool) "overload was shed, not absorbed" true (r.Client.overloaded > 0);
      (* health checks bypass the queue: Ping answers even while loaded *)
      let c = Client.connect ~host:"127.0.0.1" ~port:(Server.port srv) () in
      Alcotest.(check bool) "ping under pressure" true (Client.ping c);
      (* and correctness is intact after the storm *)
      let op = Is.Rank { s = "common"; pos = Array.length strings } in
      Alcotest.(check bool) "still correct after overload" true
        (Client.call c (Wire.Query op) = status_of_result (oracle wt op));
      Client.close c)

let test_deadline_beats_window () =
  (* the batching window is 500ms; a 5ms deadline must still be honoured
     (flush pulled earlier), so the reply arrives in well under the
     window — executed or expired, but never stuck *)
  with_server
    ~tweak:(fun c -> { c with window_us = 500_000; batch_max = 1_000_000 })
    (fun _wt srv ->
      let c = Client.connect ~host:"127.0.0.1" ~port:(Server.port srv) () in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let t0 = Unix.gettimeofday () in
      let got = Client.call ~timeout_us:5_000 c (Wire.Query (Is.Access { pos = 0 })) in
      let dt = Unix.gettimeofday () -. t0 in
      (match got with
      | Wire.Ok_value _ | Wire.Deadline_exceeded -> ()
      | _ -> Alcotest.fail "unexpected status for deadlined request");
      Alcotest.(check bool)
        (Printf.sprintf "deadlined reply not held for the window (%.0f ms)" (dt *. 1e3))
        true (dt < 0.25))

let test_expired_never_executed () =
  with_server
    ~tweak:(fun c -> { c with window_us = 50_000; batch_max = 1_000_000 })
    (fun _wt srv ->
      let c = Client.connect ~host:"127.0.0.1" ~port:(Server.port srv) () in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      (* 1us deadline, 50ms window: expired long before any flush *)
      let got = Client.call ~timeout_us:1 c (Wire.Query (Is.Access { pos = 0 })) in
      Alcotest.(check bool) "expired request reports Deadline_exceeded" true
        (got = Wire.Deadline_exceeded);
      let st = Server.stats srv in
      Alcotest.(check bool) "expiry counted" true (st.Server.expired >= 1))

(* ------------------------------------------------------------------ *)
(* Latency under contention and graceful drain *)

let test_contended_latency_bounded () =
  with_server (fun _wt srv ->
      let rng = Xoshiro.create 51 in
      let opgen _ = Wire.Query (Is.Access { pos = Xoshiro.int rng (Array.length strings) }) in
      let port = Server.port srv in
      let quiet = Client.run_load ~host:"127.0.0.1" ~port ~conns:1 ~window:1 ~ops:500 ~opgen () in
      let busy = Client.run_load ~host:"127.0.0.1" ~port ~conns:4 ~window:8 ~ops:3_000 ~opgen () in
      Alcotest.(check int) "quiet: all answered" quiet.Client.sent quiet.Client.completed;
      Alcotest.(check int) "busy: all answered" busy.Client.sent busy.Client.completed;
      (* p99 of admitted work stays within 2x uncontended (with a floor
         against scheduler noise on starved CI runners) *)
      let bound = Float.max (2.0 *. quiet.Client.p99_us) 25_000.0 in
      Alcotest.(check bool)
        (Printf.sprintf "contended p99 %.0fus within bound %.0fus" busy.Client.p99_us bound)
        true (busy.Client.p99_us <= bound))

let test_drain_answers_admitted () =
  with_server
    ~tweak:(fun c -> { c with window_us = 5_000_000 (* effectively never flush *) })
    (fun _wt srv ->
      let c = Client.connect ~host:"127.0.0.1" ~port:(Server.port srv) () in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      (* fire a request that will sit in the queue, then stop the server:
         drain must execute and answer it rather than drop it *)
      let sent = Wire.encode_request { Wire.id = 7; timeout_us = 0; body = Wire.Query (Is.Access { pos = 3 }) } in
      let rec write_all off =
        if off < String.length sent then
          write_all (off + Unix.write_substring c.Client.fd sent off (String.length sent - off))
      in
      write_all 0;
      ignore (Unix.select [] [] [] 0.1);
      Server.request_stop srv;
      let r = Client.read_reply c in
      Alcotest.(check int) "drained reply id" 7 r.Wire.rid;
      match r.Wire.status with
      | Wire.Ok_value (Is.Str s) ->
          Alcotest.(check string) "drained reply value" strings.(3) s
      | _ -> Alcotest.fail "expected the queued query's answer at drain")

(* ------------------------------------------------------------------ *)
(* The live telemetry plane: Stats/Scrape wire ops, slow-query
   exemplars, and the plain-TCP metrics listener. *)

let index_of s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then -1 else if String.sub s i m = sub then i else go (i + 1)
  in
  go 0

let contains s sub = index_of s sub >= 0

(* Run [f] with probes on and a clean slate (the telemetry ops render
   probe state, so the tests need it recording). *)
let telemetered f =
  Wt_obs.Probe.reset ();
  Wt_obs.Probe.enable ();
  Fun.protect
    ~finally:(fun () ->
      Wt_obs.Probe.disable ();
      Wt_obs.Probe.reset ())
    f

let test_stats_and_scrape_ops () =
  telemetered @@ fun () ->
  with_server ~tweak:(fun c -> { c with slow_ms = Some 0 }) (fun _wt srv ->
      let c = Client.connect ~host:"127.0.0.1" ~port:(Server.port srv) () in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let rng = Xoshiro.create 77 in
      for _ = 1 to 100 do
        ignore (Client.call c (Wire.Query (gen_op rng)))
      done;
      (* Stats: a JSON page with the report, server counters and the
         slow-query exemplar ring (slow_ms = 0 logs every request) *)
      (match Wt_obs.Json.of_string (Client.stats_json c) with
      | Error e -> Alcotest.failf "stats reply is not JSON: %s" e
      | Ok j ->
          let member k = Wt_obs.Json.member k j in
          (match Option.bind (member "server") (Wt_obs.Json.member "requests") with
          | Some (Wt_obs.Json.Int n) ->
              Alcotest.(check bool) "requests counted" true (n >= 100)
          | _ -> Alcotest.fail "stats: server.requests missing");
          (match Option.bind (member "server") (Wt_obs.Json.member "slow") with
          | Some (Wt_obs.Json.Int n) ->
              Alcotest.(check bool) "slow counted at threshold 0" true (n >= 100)
          | _ -> Alcotest.fail "stats: server.slow missing");
          (match member "slow_queries" with
          | Some (Wt_obs.Json.List (x :: _)) ->
              (* each exemplar carries the wait/exec split and a kind *)
              List.iter
                (fun k ->
                  if Wt_obs.Json.member k x = None then
                    Alcotest.failf "exemplar missing field %s" k)
                [ "t_ns"; "kind"; "rid"; "wait_ns"; "exec_ns"; "span" ]
          | _ -> Alcotest.fail "stats: slow_queries empty");
          if member "report" = None then Alcotest.fail "stats: report missing");
      (* Scrape: exposition text with live serve series and exemplars *)
      let page = Client.scrape c in
      Alcotest.(check bool) "serve_request series" true
        (contains page "wtrie_serve_request_total");
      Alcotest.(check bool) "queue-wait histogram" true
        (contains page "wtrie_serve_queue_wait_ns_count");
      Alcotest.(check bool) "open-conns gauge" true
        (contains page "wtrie_serve_open_conns");
      Alcotest.(check bool) "exemplar comment lines" true
        (contains page "# EXEMPLAR wtrie_serve_slow_query");
      let st = Server.stats srv in
      Alcotest.(check bool) "server slow stat" true (st.Server.slow >= 100))

(* Above the threshold nothing is logged: the slow path costs nothing
   for fast queries. *)
let test_slow_threshold_filters () =
  telemetered @@ fun () ->
  with_server ~tweak:(fun c -> { c with slow_ms = Some 10_000 }) (fun _wt srv ->
      let c = Client.connect ~host:"127.0.0.1" ~port:(Server.port srv) () in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      for i = 0 to 49 do
        ignore (Client.call c (Wire.Query (Is.Access { pos = i })))
      done;
      let st = Server.stats srv in
      Alcotest.(check int) "nothing slower than 10s" 0 st.Server.slow;
      Alcotest.(check bool) "no exemplars on the page" false
        (contains (Client.scrape c) "# EXEMPLAR"))

let test_metrics_listener () =
  telemetered @@ fun () ->
  with_server ~tweak:(fun c -> { c with metrics_port = Some 0; slow_ms = Some 0 })
    (fun _wt srv ->
      let mport =
        match Server.metrics_port srv with
        | Some p -> p
        | None -> Alcotest.fail "metrics listener not bound"
      in
      (* drive some traffic so the scraped counters are nonzero *)
      let c = Client.connect ~host:"127.0.0.1" ~port:(Server.port srv) () in
      for i = 0 to 19 do
        ignore (Client.call c (Wire.Query (Is.Access { pos = i })))
      done;
      (* a plain HTTP/1.0 client: one request, one response, EOF *)
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, mport));
      write_raw fd "GET /metrics HTTP/1.0\r\n\r\n";
      let got, eof = read_until_eof fd in
      Unix.close fd;
      Alcotest.(check bool) "server closes after the response" true eof;
      Alcotest.(check bool) "HTTP 200" true
        (String.length got > 15 && String.sub got 0 15 = "HTTP/1.0 200 OK");
      (match index_of got "Content-Length: " with
      | -1 -> Alcotest.fail "no Content-Length"
      | _ -> ());
      let body =
        match index_of got "\r\n\r\n" with
        | -1 -> Alcotest.fail "no header/body separator"
        | i -> String.sub got (i + 4) (String.length got - i - 4)
      in
      Alcotest.(check bool) "exposition body" true
        (contains body "wtrie_serve_request_total");
      Alcotest.(check bool) "exemplars ride the page" true
        (contains body "# EXEMPLAR wtrie_serve_slow_query");
      (* the query plane is unaffected by scrapes *)
      Alcotest.(check bool) "still serving" true (Client.ping c);
      Client.close c)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "serve"
    [
      ( "wire",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "reply round-trip" `Quick test_reply_roundtrip;
          Alcotest.test_case "corrupted payloads are rejected, never raise" `Quick
            test_decode_corrupted_total;
          Alcotest.test_case "reader reassembles chunked streams" `Quick test_reader_chunked;
          Alcotest.test_case "reader rejects absurd lengths before allocating" `Quick
            test_reader_rejects_absurd_length;
        ]
        @ qsuite [ decode_total; reader_garbage_total ] );
      ( "batcher",
        [
          Alcotest.test_case "admission control and deadlines" `Quick
            test_batcher_admission_and_deadline;
          Alcotest.test_case "batch_max cuts" `Quick test_batcher_batch_max_cut;
        ] );
      ( "server",
        [
          Alcotest.test_case "oracle: socket = engine" `Quick test_oracle_sequential;
          Alcotest.test_case "oracle under concurrent clients" `Quick
            test_oracle_concurrent_clients;
          Alcotest.test_case "garbage frames and disconnects" `Quick test_garbage_and_disconnects;
          Alcotest.test_case "slow-loris reaped" `Quick test_slow_loris_reaped;
          Alcotest.test_case "overload sheds and recovers" `Quick test_overload_sheds_and_recovers;
          Alcotest.test_case "deadline beats the window" `Quick test_deadline_beats_window;
          Alcotest.test_case "expired requests are not executed" `Quick
            test_expired_never_executed;
          Alcotest.test_case "contended p99 bounded" `Quick test_contended_latency_bounded;
          Alcotest.test_case "drain answers admitted work" `Quick test_drain_answers_admitted;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "stats and scrape wire ops" `Quick test_stats_and_scrape_ops;
          Alcotest.test_case "slow threshold filters" `Quick test_slow_threshold_filters;
          Alcotest.test_case "plain-TCP metrics listener" `Quick test_metrics_listener;
        ] );
    ]
