(* Differential harness for the multicore serving layer (lib/par): every
   generated workload runs through (a) the scalar front-door ops, (b) the
   single-domain batch engine, and (c) the parallel sharded executor at 2
   and 4 domains, and all four result vectors must be byte-identical, for
   all three trie variants.  The dynamic variant is additionally hammered
   through an epoch-published snapshot while an owner domain concurrently
   applies appends/inserts/deletes to the working trie — readers must see
   exactly the sequence frozen at the epoch they grabbed.  Pool mechanics
   (ordering, exceptions, emptiness) get direct unit tests. *)

module Xoshiro = Wt_bits.Xoshiro
module I = Wt_core.Indexed_sequence
module Pool = Wt_par.Pool
module Snapshot = Wt_par.Snapshot
module Par_exec = Wt_par.Par_exec

(* Shared pools: spawning domains per QCheck case would dominate the
   suite's runtime.  Shut down at exit for a clean join. *)
let pool2 = Pool.create ~size:2 ()
let pool4 = Pool.create ~size:4 ()
let () = at_exit (fun () -> Pool.shutdown pool2; Pool.shutdown pool4)

(* ------------------------------------------------------------------ *)
(* Scalar evaluation of one batch op through the front-door API — the
   (a) leg of the differential. *)

let scalar_eval (type a) (module V : Wtrie.STRING_API with type t = a) (wt : a)
    (op : I.op) : (I.value, I.error) result =
  match op with
  | I.Access { pos } -> Result.map (fun s -> I.Str s) (V.access wt ~pos)
  | I.Rank { s; pos } -> Result.map (fun c -> I.Int c) (V.rank wt s ~pos)
  | I.Select { s; count } -> Result.map (fun p -> I.Int p) (V.select wt s ~count)
  | I.Rank_prefix { prefix; pos } ->
      Result.map (fun c -> I.Int c) (V.rank_prefix wt ~prefix ~pos)
  | I.Select_prefix { prefix; count } ->
      Result.map (fun p -> I.Int p) (V.select_prefix wt ~prefix ~count)

(* Random op vectors: mostly valid, some out-of-range/absent (error slots
   must survive sharding at the right indices too). *)
let gen_ops rng (arr : string array) nops =
  let n = Array.length arr in
  let a_string () =
    if n > 0 && Xoshiro.int rng 4 > 0 then arr.(Xoshiro.int rng n)
    else Printf.sprintf "absent-%d" (Xoshiro.int rng 5)
  in
  let a_prefix () =
    if n > 0 && Xoshiro.int rng 4 > 0 then begin
      let s = arr.(Xoshiro.int rng n) in
      String.sub s 0 (Xoshiro.int rng (String.length s + 1))
    end
    else "zz-no-such-prefix"
  in
  let a_pos () = Xoshiro.int rng (n + 3) - 1 in
  Array.init nops (fun _ ->
      match Xoshiro.int rng 5 with
      | 0 -> I.Access { pos = a_pos () }
      | 1 -> I.Rank { s = a_string (); pos = a_pos () }
      | 2 -> I.Select { s = a_string (); count = Xoshiro.int rng 8 - 1 }
      | 3 -> I.Rank_prefix { prefix = a_prefix (); pos = a_pos () }
      | _ -> I.Select_prefix { prefix = a_prefix (); count = Xoshiro.int rng 8 - 1 })

let pp_result fmt = function
  | Ok v -> Format.fprintf fmt "Ok %a" I.pp_value v
  | Error e -> Format.fprintf fmt "Error (%a)" I.pp_error e

let check_same name ops expected got =
  Array.iteri
    (fun i r ->
      if r <> expected.(i) then
        Alcotest.failf "%s: op %d differs: got %a, expected %a" name i pp_result r
          pp_result expected.(i))
    got;
  if Array.length got <> Array.length ops then
    Alcotest.failf "%s: %d results for %d ops" name (Array.length got)
      (Array.length ops)

(* ------------------------------------------------------------------ *)
(* (a) = (b) = (c) on generated workloads, all three variants.
   [~min_shard:1] forces genuine multi-shard execution even for the
   small batches qcheck generates. *)

let word_gen = QCheck.Gen.(string_size ~gen:(char_range 'a' 'c') (int_range 1 5))
let seq_gen = QCheck.Gen.(list_size (int_range 1 120) word_gen)

let workload_arb =
  QCheck.make
    ~print:(fun (l, seed) -> Printf.sprintf "seed %d: %s" seed (String.concat "," l))
    QCheck.Gen.(pair seq_gen (int_bound 1_000_000))

let differential (type a) (module V : Wtrie.STRING_API with type t = a)
    ~(engine : a -> I.op array -> (I.value, I.error) result array) variant
    (words, seed) =
  let arr = Array.of_list words in
  let wt = V.of_array arr in
  let ops = gen_ops (Xoshiro.create seed) arr 160 in
  let scalar = Array.map (scalar_eval (module V) wt) ops in
  check_same (variant ^ " sequential batch") ops scalar (V.query_batch wt ops);
  check_same (variant ^ " parallel x2") ops scalar
    (Par_exec.query_batch ~pool:pool2 ~min_shard:1 ~domains:2 engine wt ops);
  check_same (variant ^ " parallel x4") ops scalar
    (Par_exec.query_batch ~pool:pool4 ~min_shard:1 ~domains:4 engine wt ops);
  true

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"static: scalar = batch = parallel(2,4)" ~count:60 workload_arb
      (differential (module Wtrie.Static) ~engine:Wt_exec.Exec.Static.query_batch
         "static");
    Test.make ~name:"append: scalar = batch = parallel(2,4)" ~count:60 workload_arb
      (differential (module Wtrie.Append) ~engine:Wt_exec.Exec.Append.query_batch
         "append");
    Test.make ~name:"dynamic: scalar = batch = parallel(2,4)" ~count:60 workload_arb
      (differential (module Wtrie.Dynamic) ~engine:Wt_exec.Exec.Dynamic.query_batch
         "dynamic");
  ]

(* ------------------------------------------------------------------ *)
(* Front-door [~domains]: edge batches (empty, size-1, error slots) and
   equivalence with the sequential default on a large batch. *)

let test_front_door () =
  let rng = Xoshiro.create 7 in
  let arr =
    Array.init 500 (fun _ ->
        Printf.sprintf "host-%d.net/p/%d" (Xoshiro.int rng 7) (Xoshiro.int rng 31))
  in
  let wt = Wtrie.Static.of_array arr in
  List.iter
    (fun domains ->
      Alcotest.(check int)
        "empty batch" 0
        (Array.length (Wtrie.Static.query_batch ?domains wt [||]));
      let one = Wtrie.Static.query_batch ?domains wt [| I.Access { pos = 3 } |] in
      Alcotest.(check bool) "size-1 batch" true (one = [| Ok (I.Str arr.(3)) |]);
      let bad = Wtrie.Static.query_batch ?domains wt [| I.Access { pos = -1 } |] in
      Alcotest.(check bool)
        "error slot" true
        (bad = [| Error (I.Position_out_of_bounds { pos = -1; len = 500 }) |]))
    [ None; Some 1; Some 2; Some 4 ];
  let ops = gen_ops rng arr 4096 in
  let seq = Wtrie.Static.query_batch wt ops in
  check_same "front door ~domains:4" ops seq (Wtrie.Static.query_batch ~domains:4 wt ops);
  check_same "front door ~domains:2" ops seq (Wtrie.Static.query_batch ~domains:2 wt ops)

(* ------------------------------------------------------------------ *)
(* Snapshot isolation under concurrent updates: an owner domain applies
   appends/inserts/deletes and publishes an epoch-stamped
   [Dynamic.snapshot] after each round, writing the matching oracle
   array to [mirrors.(epoch)] *before* publishing (the atomic swap in
   [Snapshot.publish] is the happens-before edge that makes both
   visible together).  Meanwhile this domain keeps grabbing the current
   (epoch, snapshot) pair and running differential batches — sequential
   engine and parallel x2/x4 — against the frozen trie; every result
   must match the mirror of that exact epoch, no matter how many
   updates have landed since. *)

let test_snapshot_isolation () =
  let epochs = 40 in
  let universe =
    Array.init 64 (fun i -> Printf.sprintf "host-%d.net/p/%d" (i mod 7) i)
  in
  let initial = Array.init 50 (fun i -> universe.(i mod Array.length universe)) in
  let wt = Wtrie.Dynamic.of_array initial in
  let mirrors = Array.make (epochs + 1) [||] in
  mirrors.(0) <- initial;
  let handle = Snapshot.create (Wtrie.Dynamic.snapshot wt) in
  let owner =
    Domain.spawn (fun () ->
        let rng = Xoshiro.create 23 in
        let mirror = ref (Array.to_list initial) in
        for e = 1 to epochs do
          (* 1-5 mutations per epoch: append / insert / delete. *)
          for _ = 1 to 1 + Xoshiro.int rng 5 do
            let len = List.length !mirror in
            match Xoshiro.int rng 3 with
            | 0 ->
                let s = universe.(Xoshiro.int rng (Array.length universe)) in
                Wtrie.Dynamic.append wt s;
                mirror := !mirror @ [ s ]
            | 1 ->
                let s = universe.(Xoshiro.int rng (Array.length universe)) in
                let pos = Xoshiro.int rng (len + 1) in
                Wtrie.Dynamic.insert wt ~pos s;
                mirror := List.filteri (fun i _ -> i < pos) !mirror @ (s :: List.filteri (fun i _ -> i >= pos) !mirror)
            | _ ->
                if len > 1 then begin
                  let pos = Xoshiro.int rng len in
                  Wtrie.Dynamic.delete wt ~pos;
                  mirror := List.filteri (fun i _ -> i <> pos) !mirror
                end
          done;
          mirrors.(e) <- Array.of_list !mirror;
          ignore (Snapshot.publish handle (Wtrie.Dynamic.snapshot wt))
        done)
  in
  let rng = Xoshiro.create 97 in
  let rounds = ref 0 in
  let check_current () =
    incr rounds;
    let e, frozen = Snapshot.pair handle in
    let arr = mirrors.(e) in
    if Array.length arr <> Wtrie.Dynamic.length frozen then
      Alcotest.failf "epoch %d: mirror %d strings, snapshot %d" e (Array.length arr)
        (Wtrie.Dynamic.length frozen);
    let ops = gen_ops rng arr 120 in
    let expected = Array.map (scalar_eval (module Wtrie.Dynamic) frozen) ops in
    (* the scalar leg itself must agree with the plain-array mirror *)
    Array.iteri
      (fun i op ->
        match (op, expected.(i)) with
        | I.Access { pos }, Ok (I.Str s) ->
            if s <> arr.(pos) then
              Alcotest.failf "epoch %d: access %d read %S, mirror %S" e pos s arr.(pos)
        | _ -> ())
      ops;
    check_same
      (Printf.sprintf "epoch %d sequential" e)
      ops expected
      (Wt_exec.Exec.Dynamic.query_batch frozen ops);
    check_same
      (Printf.sprintf "epoch %d parallel x2" e)
      ops expected
      (Par_exec.query_batch ~pool:pool2 ~min_shard:1 ~domains:2
         Wt_exec.Exec.Dynamic.query_batch frozen ops);
    check_same
      (Printf.sprintf "epoch %d parallel x4" e)
      ops expected
      (Par_exec.query_batch ~pool:pool4 ~min_shard:1 ~domains:4
         Wt_exec.Exec.Dynamic.query_batch frozen ops)
  in
  (* race with the owner, then drain: the final epochs are always
     validated even if the owner outpaced us *)
  while Snapshot.epoch handle < epochs do
    check_current ()
  done;
  Domain.join owner;
  check_current ();
  Alcotest.(check int) "final epoch" epochs (Snapshot.epoch handle);
  if !rounds < 2 then Alcotest.fail "snapshot soak: no concurrent rounds ran"

(* The owner's updates must never leak into an already-taken snapshot:
   pin one epoch-0 snapshot, rewrite the working trie completely, and
   compare the snapshot string-for-string against the original. *)
let test_snapshot_frozen () =
  let initial = Array.init 200 (fun i -> Printf.sprintf "s-%d.example/%d" (i mod 9) i) in
  let wt = Wtrie.Dynamic.of_array initial in
  let frozen = Wtrie.Dynamic.snapshot wt in
  for _ = 1 to 200 do
    Wtrie.Dynamic.delete wt ~pos:0
  done;
  Array.iteri (fun i s -> Wtrie.Dynamic.insert wt ~pos:i (s ^ "/rewritten")) initial;
  Alcotest.(check int) "frozen length" 200 (Wtrie.Dynamic.length frozen);
  Array.iteri
    (fun pos s ->
      match Wtrie.Dynamic.access frozen ~pos with
      | Ok s' when s' = s -> ()
      | r -> Alcotest.failf "frozen access %d: %a, expected %S" pos pp_result
               (Result.map (fun s -> I.Str s) r) s)
    initial;
  (* and the rewritten working trie is intact too *)
  Alcotest.(check bool)
    "working trie rewritten" true
    (Wtrie.Dynamic.access wt ~pos:0 = Ok (initial.(0) ^ "/rewritten"))

(* ------------------------------------------------------------------ *)
(* Pool unit tests: results land in the submitting order's slots, work
   is conserved, exceptions propagate after the fan-in. *)

let test_pool_ordering () =
  List.iter
    (fun pool ->
      List.iter
        (fun n ->
          let out = Array.make n (-1) in
          Pool.run pool
            (Array.init n (fun i () ->
                 (* stagger so completion order differs from submit order *)
                 if i land 7 = 0 then Domain.cpu_relax ();
                 out.(i) <- i * i));
          Array.iteri
            (fun i v -> if v <> i * i then Alcotest.failf "slot %d holds %d" i v)
            out)
        [ 0; 1; 2; 3; 17; 256 ])
    [ pool2; pool4 ]

let test_pool_exception () =
  let ran = Atomic.make 0 in
  (try
     Pool.run pool4
       (Array.init 16 (fun i () ->
            ignore (Atomic.fetch_and_add ran 1);
            if i = 11 then failwith "task 11"));
     Alcotest.fail "expected the task exception to propagate"
   with Failure msg -> Alcotest.(check string) "propagated" "task 11" msg);
  (* all tasks still ran: one failure never cancels its batch *)
  Alcotest.(check int) "work conserved" 16 (Atomic.get ran);
  (* and the pool is still usable afterwards *)
  let ok = Atomic.make 0 in
  Pool.run pool4 (Array.init 8 (fun _ () -> ignore (Atomic.fetch_and_add ok 1)));
  Alcotest.(check int) "pool alive" 8 (Atomic.get ok)

let test_pool_env_sizing () =
  Alcotest.(check bool)
    "default size positive" true
    (Pool.default_size () >= 1);
  Alcotest.(check int) "explicit size" 4 (Pool.size pool4);
  Alcotest.(check bool)
    "create rejects 0" true
    (try
       ignore (Pool.create ~size:0 ());
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "wt_par"
    [
      ("differential", List.map QCheck_alcotest.to_alcotest qcheck_tests);
      ( "front-door",
        [ Alcotest.test_case "~domains edges and equivalence" `Quick test_front_door ] );
      ( "snapshot",
        [
          Alcotest.test_case "isolation under concurrent updates" `Quick
            test_snapshot_isolation;
          Alcotest.test_case "pinned snapshot is frozen" `Quick test_snapshot_frozen;
        ] );
      ( "pool",
        [
          Alcotest.test_case "ordering and conservation" `Quick test_pool_ordering;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "sizing" `Quick test_pool_env_sizing;
        ] );
    ]
