(* The flat format-v3 arena (lib/core/flat_wt): golden structure against
   the paper's worked examples, full QUERY_API equivalence between the
   pointer trie and the arena — freshly built, reopened by copy, and
   reopened by mmap — v2 -> v3 migration through Wtrie.Storage, and
   deterministic closed-handle behaviour after [close]. *)

module Bitstring = Wt_strings.Bitstring
module Xoshiro = Wt_bits.Xoshiro
module Wavelet_trie = Wt_core.Wavelet_trie
module Flat_wt = Wt_core.Flat_wt
module Str_pointer = Wt_core.String_api.Pointer
module An_pointer = Wt_analytics.Analytics.Pointer
module Persist = Wt_core.Persist
module Container = Wt_durable.Container

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bs = Bitstring.of_string

let fig2_seq =
  List.map bs [ "0001"; "0011"; "0100"; "00100"; "0100"; "00100"; "0100" ]

let fig2_dump =
  [
    ("0", Some "0010101");
    ("", Some "0111");
    ("1", None);
    ("", Some "100");
    ("0", None);
    ("", None);
    ("00", None);
  ]

let dump_testable = Alcotest.(list (pair string (option string)))

(* ------------------------------------------------------------------ *)
(* Golden structure: the arena linearizes the same canonical trie the
   pointer builders produce, so the paper's worked examples must dump
   byte-for-byte identically. *)

let test_figure2_flat () =
  let wt = Flat_wt.of_list fig2_seq in
  Alcotest.check dump_testable "figure 2 structure" fig2_dump (Flat_wt.dump wt);
  Flat_wt.check_invariants wt;
  (* the paper's worked point queries on that trie *)
  check_int "length" 7 (Flat_wt.length wt);
  check_int "distinct" 4 (Flat_wt.distinct_count wt);
  check_bool "access 3" true (Bitstring.equal (bs "00100") (Flat_wt.access wt 3));
  check_int "rank 0100 @7" 3 (Flat_wt.rank wt (bs "0100") 7);
  check_bool "select 00100 #1" true (Flat_wt.select wt (bs "00100") 1 = Some 5);
  check_bool "select absent" true (Flat_wt.select wt (bs "1111") 0 = None)

(* Figure 3's post-insert sequence (0110 inserted at position 3), built
   statically: the structure is canonical in the sequence, so the flat
   build must match the dump the dynamic split produces. *)
let test_figure3_flat () =
  let seq =
    List.map bs
      [ "0001"; "0011"; "0100"; "0110"; "00100"; "0100"; "00100"; "0100" ]
  in
  let expected =
    [
      ("0", Some "00110101");
      ("", Some "0111");
      ("1", None);
      ("", Some "100");
      ("0", None);
      ("", None);
      ("", Some "0100");
      ("0", None);
      ("0", None);
    ]
  in
  let wt = Flat_wt.of_list seq in
  Alcotest.check dump_testable "figure 3 structure" expected (Flat_wt.dump wt);
  Flat_wt.check_invariants wt;
  check_bool "select 0110 #0" true (Flat_wt.select wt (bs "0110") 0 = Some 3)

(* ------------------------------------------------------------------ *)
(* Equivalence: pointer trie = flat arena = copy-opened = mmap-opened,
   over the whole string-level QUERY_API. *)

let words =
  [|
    "a"; "ab"; "abc"; "b"; "ba"; "bb"; "c"; "ca"; "site.com/home";
    "site.com/login"; "blog.net/post"; "";
  |]

let make_seq rng n = Array.init n (fun _ -> words.(Xoshiro.int rng (Array.length words)))

let result_t =
  let pp ppf = function
    | Ok v -> Format.fprintf ppf "Ok %a" Wtrie.pp_value v
    | Error e -> Format.fprintf ppf "Error (%a)" Wtrie.pp_error e
  in
  Alcotest.testable pp ( = )

let int_result = Alcotest.(result int (testable Wtrie.pp_error ( = )))
let str_result = Alcotest.(result string (testable Wtrie.pp_error ( = )))

(* Exercise one reopened/rebuilt arena against the pointer trie built
   from the same strings.  [ctx] labels the variant under test. *)
let check_equiv ctx arr pwt fwt =
  let n = Array.length arr in
  check_int (ctx ^ " length") (Str_pointer.length pwt) (Wtrie.Static.length fwt);
  check_int (ctx ^ " distinct")
    (Str_pointer.distinct_count pwt)
    (Wtrie.Static.distinct_count fwt);
  for pos = -1 to n do
    Alcotest.check str_result
      (Printf.sprintf "%s access %d" ctx pos)
      (Str_pointer.access pwt ~pos)
      (Wtrie.Static.access fwt ~pos)
  done;
  let sample = Array.to_list (Array.sub arr 0 (min n 6)) @ [ "absent!"; "" ] in
  List.iter
    (fun s ->
      check_int (ctx ^ " count " ^ s) (Str_pointer.count pwt s) (Wtrie.Static.count fwt s);
      List.iter
        (fun pos ->
          Alcotest.check int_result
            (Printf.sprintf "%s rank %s @%d" ctx s pos)
            (Str_pointer.rank pwt s ~pos)
            (Wtrie.Static.rank fwt s ~pos))
        [ -1; 0; n / 2; n; n + 1 ];
      for count = -1 to Str_pointer.count pwt s + 1 do
        Alcotest.check int_result
          (Printf.sprintf "%s select %s #%d" ctx s count)
          (Str_pointer.select pwt s ~count)
          (Wtrie.Static.select fwt s ~count)
      done;
      let prefix = if String.length s > 1 then String.sub s 0 1 else s in
      check_int
        (ctx ^ " count_prefix " ^ prefix)
        (Str_pointer.count_prefix pwt ~prefix)
        (Wtrie.Static.count_prefix fwt ~prefix);
      Alcotest.check int_result
        (ctx ^ " rank_prefix " ^ prefix)
        (Str_pointer.rank_prefix pwt ~prefix ~pos:(n / 2))
        (Wtrie.Static.rank_prefix fwt ~prefix ~pos:(n / 2));
      for count = -1 to Str_pointer.count_prefix pwt ~prefix + 1 do
        Alcotest.check int_result
          (Printf.sprintf "%s select_prefix %s #%d" ctx prefix count)
          (Str_pointer.select_prefix pwt ~prefix ~count)
          (Wtrie.Static.select_prefix fwt ~prefix ~count)
      done)
    sample;
  (* range analytics, pointer instance vs the arena instance *)
  let lo = n / 4 and hi = n - (n / 4) in
  let tallies = Alcotest.(result (array (pair string int)) (testable Wtrie.pp_error ( = ))) in
  Alcotest.check
    Alcotest.(result (array int) (testable Wtrie.pp_error ( = )))
    (ctx ^ " select_all")
    (An_pointer.select_all ~lo ~hi pwt)
    (Wtrie.Static.select_all ~lo ~hi fwt);
  Alcotest.check int_result (ctx ^ " range_count")
    (An_pointer.range_count pwt ~lo ~hi)
    (Wtrie.Static.range_count fwt ~lo ~hi);
  Alcotest.check tallies (ctx ^ " range_distinct")
    (An_pointer.range_distinct ~lo ~hi pwt)
    (Wtrie.Static.range_distinct ~lo ~hi fwt);
  Alcotest.check tallies (ctx ^ " range_topk")
    (An_pointer.range_topk ~lo ~hi pwt ~k:3)
    (Wtrie.Static.range_topk ~lo ~hi fwt ~k:3);
  (* the batch engine over the arena agrees with the scalar answers *)
  if n > 0 then begin
  let ops =
    Array.init n (fun i ->
        let s = arr.(i mod n) in
        match i mod 5 with
        | 0 -> Wtrie.Access { pos = i }
        | 1 -> Wtrie.Rank { s; pos = i }
        | 2 -> Wtrie.Select { s; count = i mod 3 }
        | 3 -> Wtrie.Rank_prefix { prefix = (if s = "" then s else String.sub s 0 1); pos = i }
        | _ -> Wtrie.Select_prefix { prefix = s; count = i mod 3 })
  in
  let scalar = function
    | Wtrie.Access { pos } -> Result.map (fun s -> Wtrie.Str s) (Str_pointer.access pwt ~pos)
    | Wtrie.Rank { s; pos } -> Result.map (fun v -> Wtrie.Int v) (Str_pointer.rank pwt s ~pos)
    | Wtrie.Select { s; count } ->
        Result.map (fun v -> Wtrie.Int v) (Str_pointer.select pwt s ~count)
    | Wtrie.Rank_prefix { prefix; pos } ->
        Result.map (fun v -> Wtrie.Int v) (Str_pointer.rank_prefix pwt ~prefix ~pos)
    | Wtrie.Select_prefix { prefix; count } ->
        Result.map (fun v -> Wtrie.Int v) (Str_pointer.select_prefix pwt ~prefix ~count)
  in
  Array.iteri
    (fun i r ->
      Alcotest.check result_t (Printf.sprintf "%s batch[%d]" ctx i) (scalar ops.(i)) r)
    (Wtrie.Static.query_batch fwt ops)
  end

let with_saved fwt f =
  let path = Filename.temp_file "wt_flat" ".wtx" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Wtrie.Static.save_file_exn fwt path;
      f path)

let test_equivalence () =
  let rng = Xoshiro.create 7 in
  List.iter
    (fun n ->
      let arr = make_seq rng n in
      let pwt = Str_pointer.of_array arr in
      let fwt = Wtrie.Static.of_array arr in
      check_equiv "fresh" arr pwt fwt;
      Wt_core.Flat_wt.check_invariants fwt;
      with_saved fwt (fun path ->
          let copy = Wtrie.Static.open_file_exn ~mode:`Copy path in
          check_equiv "copy" arr pwt copy;
          let mmap = Wtrie.Static.open_file_exn ~mode:`Mmap path in
          check_equiv "mmap" arr pwt mmap;
          Wtrie.Static.close copy;
          Wtrie.Static.close mmap))
    [ 0; 1; 2; 13; 64; 257 ]

(* ------------------------------------------------------------------ *)
(* v2 -> v3 migration: an old pointer-tree container loads (flattened)
   and converts; the converted file is a v3 arena answering the same
   queries. *)

let test_v2_migration () =
  let rng = Xoshiro.create 23 in
  let arr = make_seq rng 97 in
  let pwt = Str_pointer.of_array arr in
  let raw = Wavelet_trie.of_array (Array.map Wt_core.String_api.encode arr) in
  let v2 = Filename.temp_file "wt_flat_v2" ".wtx" in
  let v3 = Filename.temp_file "wt_flat_v3" ".wtx" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove v2;
      Sys.remove v3)
    (fun () ->
      Persist.save_static raw v2;
      check_bool "v2 file is not v3" true
        (Container.version_of_file v2 <> Some Container.version_v3);
      (* load_index flattens the v2 pointer payload on load *)
      (match Wtrie.Storage.load_index v2 with
      | Wtrie.Storage.Static fwt -> check_equiv "v2-load" arr pwt fwt
      | _ -> Alcotest.fail "v2 static index did not load as Static");
      let variant, n = Wtrie.Storage.convert v2 v3 in
      Alcotest.(check string) "source variant" "static" variant;
      check_int "converted length" (Array.length arr) n;
      check_bool "converted file is v3" true
        (Container.version_of_file v3 = Some Container.version_v3);
      let fwt = Wtrie.Static.open_file_exn v3 in
      check_equiv "converted" arr pwt fwt;
      Wtrie.Static.close fwt)

(* ------------------------------------------------------------------ *)
(* Closed handles: after [close], every result-returning operation
   reports [Trie_closed] — deterministically, never a crash — and
   [close] is idempotent. *)

let test_close () =
  let arr = [| "a"; "b"; "a"; "c" |] in
  let built = Wtrie.Static.of_array arr in
  with_saved built (fun path ->
      let wt = Wtrie.Static.open_file_exn path in
      check_int "open answers" 4 (Wtrie.Static.length wt);
      Wtrie.Static.close wt;
      check_bool "is_closed" true (Wtrie.Static.is_closed wt);
      let closed = Alcotest.testable Wtrie.pp_error ( = ) in
      let expect_closed name r =
        match r with
        | Error Wtrie.Trie_closed -> ()
        | Error e -> Alcotest.check closed name Wtrie.Trie_closed e
        | Ok _ -> Alcotest.fail (name ^ ": succeeded on a closed handle")
      in
      expect_closed "access" (Wtrie.Static.access wt ~pos:0);
      expect_closed "rank" (Wtrie.Static.rank wt "a" ~pos:2);
      expect_closed "select" (Wtrie.Static.select wt "a" ~count:0);
      expect_closed "rank_prefix" (Wtrie.Static.rank_prefix wt ~prefix:"a" ~pos:2);
      expect_closed "select_prefix" (Wtrie.Static.select_prefix wt ~prefix:"a" ~count:0);
      expect_closed "select_all" (Wtrie.Static.select_all wt);
      expect_closed "range_count" (Wtrie.Static.range_count wt ~lo:0 ~hi:1);
      expect_closed "range_distinct" (Wtrie.Static.range_distinct wt);
      expect_closed "range_topk" (Wtrie.Static.range_topk wt ~k:1);
      expect_closed "save_file" (Wtrie.Static.save_file wt path);
      Array.iter (expect_closed "batch")
        (Wtrie.Static.query_batch wt [| Access { pos = 0 }; Rank { s = "a"; pos = 1 } |]);
      (* idempotent, and the handle stays deterministically closed *)
      Wtrie.Static.close wt;
      expect_closed "access after re-close" (Wtrie.Static.access wt ~pos:0);
      (* the in-memory arena it was saved from is unaffected *)
      check_int "original still answers" 4 (Wtrie.Static.length built))

(* ------------------------------------------------------------------ *)
(* Storage errors surface through the shared error type, not
   exceptions. *)

let test_storage_errors () =
  (match Wtrie.Static.open_file "no-such-file.wtx" with
  | Error (Wtrie.Storage_error _) -> ()
  | Error e -> Alcotest.failf "expected Storage_error, got %a" Wtrie.pp_error e
  | Ok _ -> Alcotest.fail "opened a missing file");
  let path = Filename.temp_file "wt_flat_bad" ".wtx" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "this is not a container";
      close_out oc;
      List.iter
        (fun mode ->
          match Wtrie.Static.open_file ~mode path with
          | Error (Wtrie.Storage_error _) -> ()
          | Error e -> Alcotest.failf "expected Storage_error, got %a" Wtrie.pp_error e
          | Ok _ -> Alcotest.fail "opened garbage")
        [ `Copy; `Mmap ])

let () =
  Alcotest.run "wt_flat"
    [
      ( "golden",
        [
          Alcotest.test_case "figure 2 on the arena" `Quick test_figure2_flat;
          Alcotest.test_case "figure 3 sequence on the arena" `Quick test_figure3_flat;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "pointer = flat = copy = mmap" `Quick test_equivalence;
        ] );
      ( "storage",
        [
          Alcotest.test_case "v2 load + convert to v3" `Quick test_v2_migration;
          Alcotest.test_case "errors are data" `Quick test_storage_errors;
        ] );
      ("close", [ Alcotest.test_case "deterministic after close" `Quick test_close ]);
    ]
