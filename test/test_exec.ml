(* Batch query engine (lib/exec): batch-vs-scalar oracle equivalence on
   random and golden workloads for all three variants, rank-cursor unit
   tests against the scalar bitvector operations (in arbitrary position
   order, not just monotone), bulk_append equivalence, and the Exec_*
   probe counters. *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Xoshiro = Wt_bits.Xoshiro
module Bitbuf = Wt_bits.Bitbuf
module Rrr = Wt_bitvector.Rrr
module Appendable = Wt_bitvector.Appendable
module Dyn_rle = Wt_bitvector.Dyn_rle
module Wavelet_trie = Wt_core.Wavelet_trie
module Append_wt = Wt_core.Append_wt
module Dynamic_wt = Wt_core.Dynamic_wt
module I = Wt_core.Indexed_sequence
module Probe = Wt_obs.Probe

let check_int = Alcotest.(check int)
let bs = Bitstring.of_string

(* ------------------------------------------------------------------ *)
(* String-level oracle: evaluate one op against a plain array with the
   exact error contract of [query_batch]. *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let oracle (arr : string array) (op : I.op) : (I.value, I.error) result =
  let n = Array.length arr in
  let count_below pred pos =
    let c = ref 0 in
    for i = 0 to pos - 1 do
      if pred arr.(i) then incr c
    done;
    !c
  in
  let find_nth pred k =
    let seen = ref 0 and res = ref None in
    (try
       for i = 0 to n - 1 do
         if pred arr.(i) then begin
           if !seen = k then begin
             res := Some i;
             raise Exit
           end;
           incr seen
         end
       done
     with Exit -> ());
    !res
  in
  let select_like pred count =
    if count < 0 then Error (I.Negative_count { count })
    else
      match find_nth pred count with
      | Some pos -> Ok (I.Int pos)
      | None -> Error (I.No_occurrence { count; occurrences = count_below pred n })
  in
  match op with
  | I.Access { pos } ->
      if pos < 0 || pos >= n then Error (I.Position_out_of_bounds { pos; len = n })
      else Ok (I.Str arr.(pos))
  | I.Rank { s; pos } ->
      if pos < 0 || pos > n then Error (I.Position_out_of_bounds { pos; len = n })
      else Ok (I.Int (count_below (String.equal s) pos))
  | I.Select { s; count } -> select_like (String.equal s) count
  | I.Rank_prefix { prefix; pos } ->
      if pos < 0 || pos > n then Error (I.Position_out_of_bounds { pos; len = n })
      else Ok (I.Int (count_below (starts_with ~prefix) pos))
  | I.Select_prefix { prefix; count } -> select_like (starts_with ~prefix) count

let pp_result fmt = function
  | Ok v -> Format.fprintf fmt "Ok %a" I.pp_value v
  | Error e -> Format.fprintf fmt "Error (%a)" I.pp_error e

let check_against_oracle name arr batch ops =
  Array.iteri
    (fun i r ->
      let expected = oracle arr ops.(i) in
      if r <> expected then
        Alcotest.failf "%s op %d: batch %a, oracle %a" name i pp_result r pp_result
          expected)
    batch

(* Random op vectors: mostly valid, some out-of-range/absent, with
   repeated select strings so trail memoization is exercised. *)
let gen_ops rng (arr : string array) nops =
  let n = Array.length arr in
  let a_string () =
    if n > 0 && Xoshiro.int rng 4 > 0 then arr.(Xoshiro.int rng n)
    else Printf.sprintf "absent-%d" (Xoshiro.int rng 5)
  in
  let a_prefix () =
    if n > 0 && Xoshiro.int rng 4 > 0 then begin
      let s = arr.(Xoshiro.int rng n) in
      String.sub s 0 (Xoshiro.int rng (String.length s + 1))
    end
    else "zz-no-such-prefix"
  in
  let a_pos () = Xoshiro.int rng (n + 3) - 1 in
  Array.init nops (fun _ ->
      match Xoshiro.int rng 5 with
      | 0 -> I.Access { pos = a_pos () }
      | 1 -> I.Rank { s = a_string (); pos = a_pos () }
      | 2 -> I.Select { s = a_string (); count = Xoshiro.int rng 8 - 1 }
      | 3 -> I.Rank_prefix { prefix = a_prefix (); pos = a_pos () }
      | _ -> I.Select_prefix { prefix = a_prefix (); count = Xoshiro.int rng 8 - 1 })

let url_strings rng n =
  Array.init n (fun _ ->
      Printf.sprintf "host-%d.net/p/%d" (Xoshiro.int rng 7) (Xoshiro.int rng 31))

(* ------------------------------------------------------------------ *)
(* (a) batch = oracle on random workloads, all three variants. *)

let test_batch_oracle_random () =
  List.iter
    (fun seed ->
      let rng = Xoshiro.create seed in
      let n = 50 + Xoshiro.int rng 400 in
      let arr = url_strings rng n in
      let ops = gen_ops rng arr (1 + Xoshiro.int rng 300) in
      check_against_oracle "static" arr (Wtrie.Static.query_batch (Wtrie.Static.of_array arr) ops) ops;
      check_against_oracle "append" arr (Wtrie.Append.query_batch (Wtrie.Append.of_array arr) ops) ops;
      check_against_oracle "dynamic" arr
        (Wtrie.Dynamic.query_batch (Wtrie.Dynamic.of_array arr) ops)
        ops)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_batch_empty_and_tiny () =
  (* empty sequence: every access errors, ranks at 0 are fine *)
  let arr = [||] in
  let wt = Wtrie.Static.of_array arr in
  let ops =
    [|
      I.Access { pos = 0 };
      I.Rank { s = "x"; pos = 0 };
      I.Select { s = "x"; count = 0 };
      I.Rank_prefix { prefix = ""; pos = 0 };
      I.Select_prefix { prefix = ""; count = -1 };
    |]
  in
  check_against_oracle "empty" arr (Wtrie.Static.query_batch wt ops) ops;
  check_int "empty batch" 0 (Array.length (Wtrie.Static.query_batch wt [||]));
  (* single-string sequence, duplicated ops *)
  let arr = [| "only"; "only"; "only" |] in
  let wt = Wtrie.Append.of_array arr in
  let ops =
    Array.concat
      [
        Array.init 6 (fun i -> I.Select { s = "only"; count = i });
        Array.init 4 (fun pos -> I.Access { pos });
        [| I.Rank { s = "only"; pos = 3 }; I.Rank_prefix { prefix = "on"; pos = 2 } |];
      ]
  in
  check_against_oracle "tiny" arr (Wtrie.Append.query_batch wt ops) ops

(* (b) Figure 2 golden, at the bitstring level: the engine functor run
   directly against the scalar Query results, covering every op kind on
   the paper's exact trie. *)

module Exec_static = Wt_exec.Exec.Make (Wavelet_trie.Node)

let test_fig2_bit_level () =
  let strings =
    List.map bs [ "0001"; "0011"; "0100"; "00100"; "0100"; "00100"; "0100" ]
  in
  let wt = Wavelet_trie.of_list strings in
  let distinct = List.sort_uniq Bitstring.compare strings in
  let prefixes = List.map bs [ ""; "0"; "00"; "01"; "1"; "001"; "0100" ] in
  let ops =
    Array.of_list
      (List.concat
         [
           List.init 7 (fun pos -> Exec_static.Access pos);
           List.concat_map
             (fun s -> List.init 8 (fun pos -> Exec_static.Rank (s, pos)))
             distinct;
           List.concat_map
             (fun s -> List.init 4 (fun k -> Exec_static.Select (s, k)))
             distinct;
           List.concat_map
             (fun p -> List.init 8 (fun pos -> Exec_static.Rank_prefix (p, pos)))
             prefixes;
           List.concat_map
             (fun p -> List.init 4 (fun k -> Exec_static.Select_prefix (p, k)))
             prefixes;
         ])
  in
  let res = Exec_static.run wt ops in
  Array.iteri
    (fun i op ->
      match (op, res.(i)) with
      | Exec_static.Access pos, Exec_static.Bits b ->
          Alcotest.(check string)
            (Printf.sprintf "access %d" pos)
            (Bitstring.to_string (Wavelet_trie.access wt pos))
            (Bitstring.to_string b)
      | Exec_static.Rank (s, pos), Exec_static.Count c ->
          check_int
            (Printf.sprintf "rank %s %d" (Bitstring.to_string s) pos)
            (Wavelet_trie.rank wt s pos) c
      | Exec_static.Rank_prefix (p, pos), Exec_static.Count c ->
          check_int
            (Printf.sprintf "rank_prefix %s %d" (Bitstring.to_string p) pos)
            (Wavelet_trie.rank_prefix wt p pos)
            c
      | Exec_static.Select (s, k), r ->
          let got =
            match r with
            | Exec_static.Found pos -> Some pos
            | Exec_static.Missing _ -> None
            | _ -> Alcotest.fail "select: wrong result shape"
          in
          Alcotest.(check (option int))
            (Printf.sprintf "select %s %d" (Bitstring.to_string s) k)
            (Wavelet_trie.select wt s k) got
      | Exec_static.Select_prefix (p, k), r ->
          let got =
            match r with
            | Exec_static.Found pos -> Some pos
            | Exec_static.Missing _ -> None
            | _ -> Alcotest.fail "select_prefix: wrong result shape"
          in
          Alcotest.(check (option int))
            (Printf.sprintf "select_prefix %s %d" (Bitstring.to_string p) k)
            (Wavelet_trie.select_prefix wt p k)
            got
      | _ -> Alcotest.fail "result shape does not match op")
    ops

(* (c) Dynamic variant under interleaved insert/delete: re-batch after
   every burst of mutations and compare against the mirrored array. *)

let test_dynamic_interleaved () =
  let rng = Xoshiro.create 99 in
  let wt = Wtrie.Dynamic.of_array [||] in
  let mirror = ref [] in
  (* mirror as list for cheap positional insert/delete *)
  let insert_at pos x l =
    let rec go i = function
      | rest when i = pos -> x :: rest
      | [] -> [ x ]
      | y :: rest -> y :: go (i + 1) rest
    in
    go 0 l
  in
  let delete_at pos l = List.filteri (fun i _ -> i <> pos) l in
  for round = 1 to 12 do
    for _ = 1 to 25 do
      let len = List.length !mirror in
      if len > 0 && Xoshiro.int rng 3 = 0 then begin
        let pos = Xoshiro.int rng len in
        Wtrie.Dynamic.delete wt ~pos;
        mirror := delete_at pos !mirror
      end
      else begin
        let pos = Xoshiro.int rng (len + 1) in
        let s =
          Printf.sprintf "host-%d.net/p/%d" (Xoshiro.int rng 5) (Xoshiro.int rng 9)
        in
        Wtrie.Dynamic.insert wt ~pos s;
        mirror := insert_at pos s !mirror
      end
    done;
    let arr = Array.of_list !mirror in
    let ops = gen_ops rng arr 120 in
    check_against_oracle
      (Printf.sprintf "dynamic round %d" round)
      arr
      (Wtrie.Dynamic.query_batch wt ops)
      ops
  done

(* ------------------------------------------------------------------ *)
(* (d) Rank cursors agree with the scalar bitvector ops — in arbitrary
   position order (backward seeks must re-anchor, not corrupt state). *)

let random_bitbuf rng n =
  let buf = Bitbuf.create () in
  for _ = 1 to n do
    (* runs of random length so RLE leaves and RRR classes vary *)
    Bitbuf.add buf (Xoshiro.bool rng)
  done;
  buf

let positions_mixed rng n k =
  (* monotone prefix then random jumps, including pos 0 and len *)
  Array.init k (fun i ->
      if i < k / 2 then i * (n / (k / 2 + 1))
      else if i = k / 2 then n
      else Xoshiro.int rng (n + 1))

let test_rrr_cursor () =
  let rng = Xoshiro.create 7 in
  List.iter
    (fun n ->
      let buf = random_bitbuf rng n in
      let bv = Rrr.of_bitbuf buf in
      let cur = Rrr.Cursor.create bv in
      Array.iter
        (fun pos ->
          check_int
            (Printf.sprintf "rrr rank1 @%d/%d" pos n)
            (Rrr.rank bv true pos)
            (Rrr.Cursor.rank cur true pos);
          check_int
            (Printf.sprintf "rrr rank0 @%d/%d" pos n)
            (Rrr.rank bv false pos)
            (Rrr.Cursor.rank cur false pos);
          if pos < n then begin
            let b, r = Rrr.Cursor.access_rank cur pos in
            let b', r' = Rrr.access_rank bv pos in
            Alcotest.(check (pair bool int))
              (Printf.sprintf "rrr access_rank @%d/%d" pos n)
              (b', r') (b, r)
          end)
        (positions_mixed rng n 200))
    [ 1; 61; 62; 63; 992; 993; 5000 ]

let test_appendable_cursor () =
  let rng = Xoshiro.create 8 in
  (* cross the frozen-segment boundary (seg_bits = 4096) and exercise the
     offset-prefix: init-based constant prefix then mixed appends *)
  List.iter
    (fun (use_init, n) ->
      let bv = if use_init then Appendable.init true 100 else Appendable.create () in
      for _ = 1 to n do
        Appendable.append bv (Xoshiro.bool rng)
      done;
      let len = Appendable.length bv in
      let cur = Appendable.Cursor.create bv in
      Array.iter
        (fun pos ->
          check_int
            (Printf.sprintf "appendable rank1 @%d/%d" pos len)
            (Appendable.rank bv true pos)
            (Appendable.Cursor.rank cur true pos);
          if pos < len then begin
            let b, r = Appendable.Cursor.access_rank cur pos in
            let b', r' = Appendable.access_rank bv pos in
            Alcotest.(check (pair bool int))
              (Printf.sprintf "appendable access_rank @%d/%d" pos len)
              (b', r') (b, r)
          end)
        (positions_mixed rng len 300))
    [ (false, 100); (false, 9000); (true, 50); (true, 9000) ]

let test_dyn_rle_cursor () =
  let rng = Xoshiro.create 9 in
  List.iter
    (fun n ->
      let bv = Dyn_rle.create () in
      (* runs + point inserts so the AVL has many leaves *)
      let bit = ref false in
      for i = 1 to n do
        if Xoshiro.int rng 5 = 0 then bit := not !bit;
        if i mod 7 = 0 && Dyn_rle.length bv > 0 then
          Dyn_rle.insert bv (Xoshiro.int rng (Dyn_rle.length bv)) !bit
        else Dyn_rle.append bv !bit
      done;
      let len = Dyn_rle.length bv in
      let cur = Dyn_rle.Cursor.create bv in
      Array.iter
        (fun pos ->
          check_int
            (Printf.sprintf "dyn_rle rank1 @%d/%d" pos len)
            (Dyn_rle.rank bv true pos)
            (Dyn_rle.Cursor.rank cur true pos);
          if pos < len then begin
            let b, r = Dyn_rle.Cursor.access_rank cur pos in
            Alcotest.(check (pair bool int))
              (Printf.sprintf "dyn_rle access_rank @%d/%d" pos len)
              (Dyn_rle.access bv pos, Dyn_rle.rank bv (Dyn_rle.access bv pos) pos)
              (b, r)
          end)
        (positions_mixed rng len 300))
    [ 1; 40; 2000 ]

(* Cursor reuse across mutations: the chunk-tree cursor caches a decoded
   leaf, and an [insert]/[delete]/[append] between queries replaces the
   tree's root.  The cursor must detect the new root and reload — a
   regression here answers from the pre-edit leaf (stale run offsets and
   one-counts) without any error. *)
let test_dyn_rle_cursor_across_updates () =
  let rng = Xoshiro.create 77 in
  let bv = Dyn_rle.create () in
  let bit = ref false in
  for _ = 1 to 3000 do
    if Xoshiro.int rng 5 = 0 then bit := not !bit;
    Dyn_rle.append bv !bit
  done;
  let cur = Dyn_rle.Cursor.create bv in
  for round = 1 to 200 do
    let len = Dyn_rle.length bv in
    (* query — populating the cursor cache ... *)
    let pos = Xoshiro.int rng (len + 1) in
    check_int
      (Printf.sprintf "round %d pre-edit rank @%d" round pos)
      (Dyn_rle.rank bv true pos)
      (Dyn_rle.Cursor.rank cur true pos);
    (* ... mutate near the cached position, so a stale cache would cover
       the queried region ... *)
    (match Xoshiro.int rng 3 with
    | 0 -> Dyn_rle.insert bv (Xoshiro.int rng (len + 1)) (Xoshiro.int rng 2 = 0)
    | 1 -> if len > 0 then Dyn_rle.delete bv (Xoshiro.int rng len)
    | _ -> Dyn_rle.append bv (Xoshiro.int rng 2 = 0));
    (* ... and re-query through the same cursor at nearby positions *)
    let len = Dyn_rle.length bv in
    let near = min len (max 0 (pos - 1 + Xoshiro.int rng 3)) in
    check_int
      (Printf.sprintf "round %d post-edit rank @%d" round near)
      (Dyn_rle.rank bv true near)
      (Dyn_rle.Cursor.rank cur true near);
    if len > 0 then begin
      let p = min (len - 1) near in
      Alcotest.(check (pair bool int))
        (Printf.sprintf "round %d post-edit access_rank @%d" round p)
        (Dyn_rle.access_rank bv p)
        (Dyn_rle.Cursor.access_rank cur p)
    end
  done

(* Two back-to-back batches against the scalar oracle, with mutations in
   between: pins that a [query_batch] call never carries engine or
   cursor state into the next one, for both mutable variants. *)
let test_back_to_back_batches () =
  let rng = Xoshiro.create 99 in
  (* dynamic: batch / insert+delete / batch *)
  let arr0 = url_strings rng 400 in
  let dwt = Wtrie.Dynamic.of_array arr0 in
  let ops1 = gen_ops rng arr0 500 in
  check_against_oracle "dynamic batch 1" arr0 (Wtrie.Dynamic.query_batch dwt ops1) ops1;
  let arr = ref (Array.to_list arr0) in
  for i = 0 to 60 do
    let s = Printf.sprintf "fresh-%d.io/%d" (i mod 5) i in
    let pos = Xoshiro.int rng (List.length !arr + 1) in
    Wtrie.Dynamic.insert dwt ~pos s;
    arr := List.filteri (fun j _ -> j < pos) !arr @ (s :: List.filteri (fun j _ -> j >= pos) !arr);
    if i land 1 = 0 then begin
      let pos = Xoshiro.int rng (List.length !arr) in
      Wtrie.Dynamic.delete dwt ~pos;
      arr := List.filteri (fun j _ -> j <> pos) !arr
    end
  done;
  let arr1 = Array.of_list !arr in
  let ops2 = gen_ops rng arr1 500 in
  check_against_oracle "dynamic batch 2" arr1 (Wtrie.Dynamic.query_batch dwt ops2) ops2;
  (* append-only: batch / append / batch *)
  let awt = Wtrie.Append.create () in
  Array.iter (Wtrie.Append.append awt) arr0;
  let ops1 = gen_ops rng arr0 500 in
  check_against_oracle "append batch 1" arr0 (Wtrie.Append.query_batch awt ops1) ops1;
  let extra = url_strings rng 300 in
  Array.iter (Wtrie.Append.append awt) extra;
  let arr1 = Array.append arr0 extra in
  let ops2 = gen_ops rng arr1 500 in
  check_against_oracle "append batch 2" arr1 (Wtrie.Append.query_batch awt ops2) ops2

(* ------------------------------------------------------------------ *)
(* (e) bulk_append is exactly Array.iter append. *)

let test_bulk_append_equivalence () =
  let rng = Xoshiro.create 13 in
  for trial = 1 to 10 do
    let one = Wtrie.Append.create () and batch = Wtrie.Append.create () in
    (* several batches in a row, alternating with scalar appends, so
       bulk routing hits leaves, splits and existing internals *)
    for _ = 1 to 4 do
      let ss = url_strings rng (1 + Xoshiro.int rng 200) in
      Array.iter (Wtrie.Append.append one) ss;
      Wtrie.Append.append_batch batch ss;
      let extra = Printf.sprintf "solo-%d" (Xoshiro.int rng 100) in
      Wtrie.Append.append one extra;
      Wtrie.Append.append batch extra
    done;
    Append_wt.check_invariants batch;
    if Append_wt.dump one <> Append_wt.dump batch then
      Alcotest.failf "trial %d: bulk_append trie differs from scalar appends" trial
  done;
  (* prefix-freeness violations still raise, as in scalar append *)
  let wt = Wtrie.Append.create () in
  Wtrie.Append.append_batch wt [| "ab" |];
  (match Wt_core.String_api.encode "ab" with
  | e ->
      Alcotest.check_raises "proper prefix rejected"
        (Invalid_argument
           "Append_wt.append: string is a proper prefix of a stored string")
        (fun () -> Append_wt.bulk_append wt [| Bitstring.prefix e 3 |]))

(* (f) Probe counters: one batch hit, per-op count, cursor hits. *)

let test_exec_probes () =
  let rng = Xoshiro.create 17 in
  let arr = url_strings rng 2000 in
  let wt = Wtrie.Static.of_array arr in
  let ops = gen_ops rng arr 500 in
  Probe.reset ();
  Probe.enable ();
  Fun.protect ~finally:(fun () ->
      Probe.disable ();
      Probe.reset ())
  @@ fun () ->
  let results = Wtrie.Static.query_batch wt ops in
  check_int "one batch" 1 (Probe.counter Exec_batch);
  (* ops failing argument validation never reach the engine *)
  let engine_ops =
    Array.fold_left
      (fun acc r ->
        match r with
        | Error (I.Position_out_of_bounds _) | Error (I.Negative_count _) -> acc
        | _ -> acc + 1)
      0 results
  in
  check_int "ops counted" engine_ops (Probe.counter Exec_batch_ops);
  Alcotest.(check bool) "cursor hits recorded" true (Probe.counter Bv_cursor_hit > 0);
  Alcotest.(check bool)
    "levels timed" true
    (List.exists (fun (op, _) -> op = "exec_level") (Probe.latency_list ()))

let () =
  Alcotest.run "wt_exec"
    [
      ( "oracle",
        [
          Alcotest.test_case "random batches match the scalar oracle" `Quick
            test_batch_oracle_random;
          Alcotest.test_case "empty and tiny sequences" `Quick test_batch_empty_and_tiny;
          Alcotest.test_case "figure-2 trie, bit level, all op kinds" `Quick
            test_fig2_bit_level;
          Alcotest.test_case "dynamic variant under interleaved insert/delete" `Quick
            test_dynamic_interleaved;
        ] );
      ( "cursors",
        [
          Alcotest.test_case "rrr cursor = scalar rank/access" `Quick test_rrr_cursor;
          Alcotest.test_case "appendable cursor = scalar rank/access" `Quick
            test_appendable_cursor;
          Alcotest.test_case "dyn_rle cursor = scalar rank/access" `Quick
            test_dyn_rle_cursor;
          Alcotest.test_case "dyn_rle cursor across insert/delete/append" `Quick
            test_dyn_rle_cursor_across_updates;
          Alcotest.test_case "back-to-back batches vs oracle" `Quick
            test_back_to_back_batches;
        ] );
      ( "bulk",
        [
          Alcotest.test_case "bulk_append = iterated append" `Quick
            test_bulk_append_equivalence;
        ] );
      ( "probes",
        [ Alcotest.test_case "batch counters and cursor hits" `Quick test_exec_probes ] );
    ]
