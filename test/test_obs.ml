(* Observability layer: counter exactness on the paper's Figure 2 trie,
   JSON round-trips of reports, and the zero-cost-when-disabled
   contract (disabled probes leave results identical and counters
   untouched). *)

module Bitstring = Wt_strings.Bitstring
module Wavelet_trie = Wt_core.Wavelet_trie
module Naive = Wt_core.Indexed_sequence.Naive
module Probe = Wt_obs.Probe
module Metric = Wt_obs.Metric
module Histogram = Wt_obs.Histogram
module Json = Wt_obs.Json
module Report = Wt_obs.Report
module Str = Wt_core.String_api

let check_int = Alcotest.(check int)

let fig2_strings = [ "0001"; "0011"; "0100"; "00100"; "0100"; "00100"; "0100" ]
let fig2 () = Wavelet_trie.of_list (List.map Bitstring.of_string fig2_strings)
let bs = Bitstring.of_string

(* Run [f] with probes enabled and a clean slate; always disable after. *)
let probed f =
  Probe.reset ();
  Probe.enable ();
  Fun.protect ~finally:(fun () ->
      Probe.disable ();
      Probe.reset ())
    f

(* ------------------------------------------------------------------ *)
(* (a) Counter exactness: a scripted query sequence over the Figure 2
   trie, with every expected count derived by hand from the paper's
   structure (root β=0010101; see test_structure.ml for the dump). *)

let test_counters_exact () =
  let wt = fig2 () in
  probed (fun () ->
      (* access 0 = 0001: root + one internal + leaf, |s| bits, 2 bv reads *)
      Alcotest.(check string) "access" "0001" (Bitstring.to_string (Wavelet_trie.access wt 0));
      check_int "access: wt_access" 1 (Probe.counter Wt_access);
      check_int "access: nodes" 3 (Probe.counter Wt_nodes_visited);
      check_int "access: bits" 4 (Probe.counter Wt_bits_consumed);
      check_int "access: rrr_access" 2 (Probe.counter Rrr_access);

      (* rank 0100 @7 = 3: descend root (lcp 1 + branch bit), land on the
         00-leaf (lcp 2); one bitvector rank at the root *)
      check_int "rank result" 3 (Wavelet_trie.rank wt (bs "0100") 7);
      check_int "rank: wt_rank" 1 (Probe.counter Wt_rank);
      check_int "rank: nodes" (3 + 2) (Probe.counter Wt_nodes_visited);
      check_int "rank: bits" (4 + 4) (Probe.counter Wt_bits_consumed);
      check_int "rank: rrr_rank" 1 (Probe.counter Rrr_rank);

      (* select 00100 #1 = position 5: 4-node trail, |s|=5 bits, one
         bitvector select per trail edge (3) *)
      Alcotest.(check (option int)) "select result" (Some 5)
        (Wavelet_trie.select wt (bs "00100") 1);
      check_int "select: wt_select" 1 (Probe.counter Wt_select);
      check_int "select: nodes" (5 + 4) (Probe.counter Wt_nodes_visited);
      check_int "select: bits" (8 + 5) (Probe.counter Wt_bits_consumed);
      check_int "select: rrr_select" 3 (Probe.counter Rrr_select);

      (* rank_prefix 01 @7 = 3: root consumes lcp 1 + branch, the 00-leaf
         is reached with the prefix exhausted (no bits recorded there) *)
      check_int "rank_prefix result" 3 (Wavelet_trie.rank_prefix wt (bs "01") 7);
      check_int "rank_prefix: wt_rank_prefix" 1 (Probe.counter Wt_rank_prefix);
      check_int "rank_prefix: nodes" (9 + 2) (Probe.counter Wt_nodes_visited);
      check_int "rank_prefix: bits" (13 + 2) (Probe.counter Wt_bits_consumed);
      check_int "rank_prefix: rrr_rank" 2 (Probe.counter Rrr_rank);

      (* select_prefix 1 #0 = None: mismatch at the root, 0 bits *)
      Alcotest.(check (option int)) "select_prefix result" None
        (Wavelet_trie.select_prefix wt (bs "1") 0);
      check_int "select_prefix: wt_select_prefix" 1 (Probe.counter Wt_select_prefix);
      check_int "select_prefix: nodes" (11 + 1) (Probe.counter Wt_nodes_visited);
      check_int "select_prefix: bits" 15 (Probe.counter Wt_bits_consumed);
      check_int "select_prefix: rrr_select" 3 (Probe.counter Rrr_select))

(* Mutation counters on the dynamic variant: Figure 3's split, then the
   inverse merge. *)
let test_mutation_counters () =
  let dwt = Wt_core.Dynamic_wt.of_array (Array.of_list (List.map bs fig2_strings)) in
  probed (fun () ->
      Wt_core.Dynamic_wt.insert dwt 3 (bs "0110");
      check_int "insert counted" 1 (Probe.counter Wt_insert);
      check_int "figure-3 insert splits one node" 1 (Probe.counter Wt_node_split);
      Wt_core.Dynamic_wt.delete dwt 3;
      check_int "delete counted" 1 (Probe.counter Wt_delete);
      check_int "deleting the only 0110 merges the node back" 1
        (Probe.counter Wt_node_merge))

(* ------------------------------------------------------------------ *)
(* (b) JSON round-trips, with deterministic latencies via the injected
   clock: every timed section lasts exactly 1000 "ns". *)

let test_report_roundtrip () =
  let ticks = ref 0 in
  Probe.set_clock (fun () ->
      ticks := !ticks + 1000;
      !ticks);
  Fun.protect ~finally:(fun () -> Probe.set_clock Probe.default_clock) @@ fun () ->
  probed (fun () ->
      let wt = Str.Static.of_list [ "a"; "b"; "a"; "ab" ] in
      check_int "count" 2 (Str.Static.count wt "a");
      ignore (Str.Static.access wt ~pos:3);
      ignore (Str.Static.select wt "b" ~count:0);
      let report =
        Report.capture
          ~space:
            [ Wt_core.Stats.to_breakdown ~variant:"static" (Wt_core.Flat_wt.stats wt) ]
          ()
      in
      (* deterministic clock: 1000 ns lands in the [512, 1024) bucket *)
      let lat = List.find (fun l -> l.Report.op = "wt_rank") report.Report.latencies in
      check_int "lat count" 1 lat.Report.count;
      check_int "lat p50 lower bound" 512 lat.Report.p50_ns;
      check_int "lat max exact" 1000 lat.Report.max_ns;
      (* to_json -> of_json -> to_json is the identity on the JSON form *)
      let j1 = Report.to_json_string report in
      (match Report.of_json_string j1 with
      | Error e -> Alcotest.failf "report did not parse back: %s" e
      | Ok r2 ->
          Alcotest.(check string) "round-trip" j1 (Report.to_json_string r2));
      (* and the parser survives the pretty-printed form too *)
      match Json.of_string (Json.to_string_pretty (Report.to_json report)) with
      | Error e -> Alcotest.failf "pretty form did not parse: %s" e
      | Ok j -> Alcotest.(check string) "pretty round-trip" j1 (Json.to_string j))

let test_json_corners () =
  let cases =
    [
      {|{"a": [1, -2.5, true, null, "x\n\"y\""], "b": {}}|};
      {|[]|};
      {|3.0|};
      {|"A"|};
    ]
  in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Error e -> Alcotest.failf "%s did not parse: %s" s e
      | Ok j -> (
          (* canonical form must itself round-trip *)
          let c = Json.to_string j in
          match Json.of_string c with
          | Error e -> Alcotest.failf "canonical %s did not re-parse: %s" c e
          | Ok j' -> Alcotest.(check string) "stable" c (Json.to_string j')))
    cases;
  (match Json.of_string "{broken" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed JSON accepted");
  (* integral floats keep a float representation *)
  Alcotest.(check string) "float repr" "3.0" (Json.to_string (Json.Float 3.))

(* ------------------------------------------------------------------ *)
(* (c) Disabled probes: counters stay zero and results match the oracle
   exactly (the seed behaviour). *)

let test_disabled_zero_cost () =
  Probe.disable ();
  Probe.reset ();
  let strings =
    Array.init 200 (fun i -> Printf.sprintf "host-%d.net/p/%d" (i mod 7) (i mod 31))
  in
  let encoded = Array.map Wt_strings.Binarize.of_bytes strings in
  let naive = Naive.of_array encoded in
  let check_variant (type a)
      (module V : Wt_core.Indexed_sequence.STRING_API with type t = a) name (wt : a) =
    for pos = 0 to Array.length strings - 1 do
      Alcotest.(check string)
        (Printf.sprintf "%s access %d" name pos)
        (Wt_strings.Binarize.to_bytes (Naive.access naive pos))
        (Result.get_ok (V.access wt ~pos))
    done;
    Array.iteri
      (fun i s ->
        let e = Wt_strings.Binarize.of_bytes s in
        check_int
          (Printf.sprintf "%s rank %d" name i)
          (Naive.rank naive e (i + 1))
          (Result.get_ok (V.rank wt s ~pos:(i + 1)));
        Alcotest.(check (option int))
          (Printf.sprintf "%s select %d" name i)
          (Naive.select naive e (i mod 3))
          (Result.to_option (V.select wt s ~count:(i mod 3))))
      strings;
    (* the batch engine with probes off: results still match the scalar
       API, and (checked below) no counter moves *)
    let ops =
      Array.init 64 (fun i ->
          match i mod 3 with
          | 0 -> Wt_core.Indexed_sequence.Access { pos = i }
          | 1 -> Wt_core.Indexed_sequence.Rank { s = strings.(i); pos = i + 1 }
          | _ ->
              Wt_core.Indexed_sequence.Select { s = strings.(i); count = i mod 5 })
    in
    Array.iteri
      (fun i r ->
        let scalar =
          match ops.(i) with
          | Wt_core.Indexed_sequence.Access { pos } ->
              Result.map (fun s -> Wt_core.Indexed_sequence.Str s) (V.access wt ~pos)
          | Wt_core.Indexed_sequence.Rank { s; pos } ->
              Result.map (fun c -> Wt_core.Indexed_sequence.Int c) (V.rank wt s ~pos)
          | Wt_core.Indexed_sequence.Select { s; count } ->
              Result.map (fun p -> Wt_core.Indexed_sequence.Int p) (V.select wt s ~count)
          | _ -> assert false
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s batch[%d] = scalar" name i)
          true (r = scalar))
      (V.query_batch wt ops)
  in
  check_variant (module Wtrie.Static) "static" (Wtrie.Static.of_array strings);
  check_variant (module Wtrie.Append) "append" (Wtrie.Append.of_array strings);
  check_variant (module Wtrie.Dynamic) "dynamic" (Wtrie.Dynamic.of_array strings);
  Array.iter
    (fun m -> check_int (Metric.name m ^ " untouched") 0 (Probe.counter m))
    Metric.all;
  Alcotest.(check (list (pair string int))) "no counters" [] (Probe.counter_list ());
  Alcotest.(check int) "no latencies" 0 (List.length (Probe.latency_list ()))

(* Enabling probes must not change any result either. *)
let test_enabled_same_results () =
  let strings = Array.init 64 (fun i -> Printf.sprintf "s/%d" (i mod 10)) in
  let wt = Str.Static.of_array strings in
  let run () =
    Array.to_list
      (Array.mapi
         (fun i s ->
           ( Str.Static.access wt ~pos:i,
             Str.Static.count wt s,
             Str.Static.select wt s ~count:0 ))
         strings)
  in
  let off = run () in
  let on = probed run in
  Alcotest.(check bool) "probe state does not affect results" true (off = on)

let test_histogram_quantiles () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1; 2; 3; 1000; 1_000_000 ];
  let s = Histogram.snapshot h in
  check_int "count" 5 s.Histogram.count;
  check_int "p50 bucket lower bound" 2 s.Histogram.p50_ns;
  check_int "max exact" 1_000_000 s.Histogram.max_ns;
  Histogram.reset h;
  check_int "reset" 0 (Histogram.snapshot h).Histogram.count

let () =
  Alcotest.run "wt_obs"
    [
      ( "counters",
        [
          Alcotest.test_case "figure-2 script is counted exactly" `Quick
            test_counters_exact;
          Alcotest.test_case "mutations count splits and merges" `Quick
            test_mutation_counters;
        ] );
      ( "report",
        [
          Alcotest.test_case "json round-trip with injected clock" `Quick
            test_report_roundtrip;
          Alcotest.test_case "json corner cases" `Quick test_json_corners;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
        ] );
      ( "zero-cost",
        [
          Alcotest.test_case "disabled probes: oracle-identical, zero counters"
            `Quick test_disabled_zero_cost;
          Alcotest.test_case "enabled probes: identical results" `Quick
            test_enabled_same_results;
        ] );
    ]
