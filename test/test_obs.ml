(* Observability layer: counter exactness on the paper's Figure 2 trie,
   JSON round-trips of reports, and the zero-cost-when-disabled
   contract (disabled probes leave results identical and counters
   untouched). *)

module Bitstring = Wt_strings.Bitstring
module Wavelet_trie = Wt_core.Wavelet_trie
module Naive = Wt_core.Indexed_sequence.Naive
module Probe = Wt_obs.Probe
module Metric = Wt_obs.Metric
module Histogram = Wt_obs.Histogram
module Json = Wt_obs.Json
module Report = Wt_obs.Report
module Str = Wt_core.String_api

let check_int = Alcotest.(check int)

let fig2_strings = [ "0001"; "0011"; "0100"; "00100"; "0100"; "00100"; "0100" ]
let fig2 () = Wavelet_trie.of_list (List.map Bitstring.of_string fig2_strings)
let bs = Bitstring.of_string

(* Run [f] with probes enabled and a clean slate; always disable after. *)
let probed f =
  Probe.reset ();
  Probe.enable ();
  Fun.protect ~finally:(fun () ->
      Probe.disable ();
      Probe.reset ())
    f

(* ------------------------------------------------------------------ *)
(* (a) Counter exactness: a scripted query sequence over the Figure 2
   trie, with every expected count derived by hand from the paper's
   structure (root β=0010101; see test_structure.ml for the dump). *)

let test_counters_exact () =
  let wt = fig2 () in
  probed (fun () ->
      (* access 0 = 0001: root + one internal + leaf, |s| bits, 2 bv reads *)
      Alcotest.(check string) "access" "0001" (Bitstring.to_string (Wavelet_trie.access wt 0));
      check_int "access: wt_access" 1 (Probe.counter Wt_access);
      check_int "access: nodes" 3 (Probe.counter Wt_nodes_visited);
      check_int "access: bits" 4 (Probe.counter Wt_bits_consumed);
      check_int "access: rrr_access" 2 (Probe.counter Rrr_access);

      (* rank 0100 @7 = 3: descend root (lcp 1 + branch bit), land on the
         00-leaf (lcp 2); one bitvector rank at the root *)
      check_int "rank result" 3 (Wavelet_trie.rank wt (bs "0100") 7);
      check_int "rank: wt_rank" 1 (Probe.counter Wt_rank);
      check_int "rank: nodes" (3 + 2) (Probe.counter Wt_nodes_visited);
      check_int "rank: bits" (4 + 4) (Probe.counter Wt_bits_consumed);
      check_int "rank: rrr_rank" 1 (Probe.counter Rrr_rank);

      (* select 00100 #1 = position 5: 4-node trail, |s|=5 bits, one
         bitvector select per trail edge (3) *)
      Alcotest.(check (option int)) "select result" (Some 5)
        (Wavelet_trie.select wt (bs "00100") 1);
      check_int "select: wt_select" 1 (Probe.counter Wt_select);
      check_int "select: nodes" (5 + 4) (Probe.counter Wt_nodes_visited);
      check_int "select: bits" (8 + 5) (Probe.counter Wt_bits_consumed);
      check_int "select: rrr_select" 3 (Probe.counter Rrr_select);

      (* rank_prefix 01 @7 = 3: root consumes lcp 1 + branch, the 00-leaf
         is reached with the prefix exhausted (no bits recorded there) *)
      check_int "rank_prefix result" 3 (Wavelet_trie.rank_prefix wt (bs "01") 7);
      check_int "rank_prefix: wt_rank_prefix" 1 (Probe.counter Wt_rank_prefix);
      check_int "rank_prefix: nodes" (9 + 2) (Probe.counter Wt_nodes_visited);
      check_int "rank_prefix: bits" (13 + 2) (Probe.counter Wt_bits_consumed);
      check_int "rank_prefix: rrr_rank" 2 (Probe.counter Rrr_rank);

      (* select_prefix 1 #0 = None: mismatch at the root, 0 bits *)
      Alcotest.(check (option int)) "select_prefix result" None
        (Wavelet_trie.select_prefix wt (bs "1") 0);
      check_int "select_prefix: wt_select_prefix" 1 (Probe.counter Wt_select_prefix);
      check_int "select_prefix: nodes" (11 + 1) (Probe.counter Wt_nodes_visited);
      check_int "select_prefix: bits" 15 (Probe.counter Wt_bits_consumed);
      check_int "select_prefix: rrr_select" 3 (Probe.counter Rrr_select))

(* Mutation counters on the dynamic variant: Figure 3's split, then the
   inverse merge. *)
let test_mutation_counters () =
  let dwt = Wt_core.Dynamic_wt.of_array (Array.of_list (List.map bs fig2_strings)) in
  probed (fun () ->
      Wt_core.Dynamic_wt.insert dwt 3 (bs "0110");
      check_int "insert counted" 1 (Probe.counter Wt_insert);
      check_int "figure-3 insert splits one node" 1 (Probe.counter Wt_node_split);
      Wt_core.Dynamic_wt.delete dwt 3;
      check_int "delete counted" 1 (Probe.counter Wt_delete);
      check_int "deleting the only 0110 merges the node back" 1
        (Probe.counter Wt_node_merge))

(* ------------------------------------------------------------------ *)
(* (b) JSON round-trips, with deterministic latencies via the injected
   clock: every timed section lasts exactly 1000 "ns". *)

let test_report_roundtrip () =
  let ticks = ref 0 in
  Probe.set_clock (fun () ->
      ticks := !ticks + 1000;
      !ticks);
  Fun.protect ~finally:(fun () -> Probe.set_clock Probe.default_clock) @@ fun () ->
  probed (fun () ->
      let wt = Str.Static.of_list [ "a"; "b"; "a"; "ab" ] in
      check_int "count" 2 (Str.Static.count wt "a");
      ignore (Str.Static.access wt ~pos:3);
      ignore (Str.Static.select wt "b" ~count:0);
      let report =
        Report.capture
          ~space:
            [ Wt_core.Stats.to_breakdown ~variant:"static" (Wt_core.Flat_wt.stats wt) ]
          ()
      in
      (* deterministic clock: 1000 ns lands in the [512, 1024) bucket *)
      let lat = List.find (fun l -> l.Report.op = "wt_rank") report.Report.latencies in
      check_int "lat count" 1 lat.Report.count;
      check_int "lat p50 lower bound" 512 lat.Report.p50_ns;
      check_int "lat max exact" 1000 lat.Report.max_ns;
      (* to_json -> of_json -> to_json is the identity on the JSON form *)
      let j1 = Report.to_json_string report in
      (match Report.of_json_string j1 with
      | Error e -> Alcotest.failf "report did not parse back: %s" e
      | Ok r2 ->
          Alcotest.(check string) "round-trip" j1 (Report.to_json_string r2));
      (* and the parser survives the pretty-printed form too *)
      match Json.of_string (Json.to_string_pretty (Report.to_json report)) with
      | Error e -> Alcotest.failf "pretty form did not parse: %s" e
      | Ok j -> Alcotest.(check string) "pretty round-trip" j1 (Json.to_string j))

let test_json_corners () =
  let cases =
    [
      {|{"a": [1, -2.5, true, null, "x\n\"y\""], "b": {}}|};
      {|[]|};
      {|3.0|};
      {|"A"|};
    ]
  in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Error e -> Alcotest.failf "%s did not parse: %s" s e
      | Ok j -> (
          (* canonical form must itself round-trip *)
          let c = Json.to_string j in
          match Json.of_string c with
          | Error e -> Alcotest.failf "canonical %s did not re-parse: %s" c e
          | Ok j' -> Alcotest.(check string) "stable" c (Json.to_string j')))
    cases;
  (match Json.of_string "{broken" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed JSON accepted");
  (* integral floats keep a float representation *)
  Alcotest.(check string) "float repr" "3.0" (Json.to_string (Json.Float 3.))

(* ------------------------------------------------------------------ *)
(* (c) Disabled probes: counters stay zero and results match the oracle
   exactly (the seed behaviour). *)

let test_disabled_zero_cost () =
  Probe.disable ();
  Probe.reset ();
  let strings =
    Array.init 200 (fun i -> Printf.sprintf "host-%d.net/p/%d" (i mod 7) (i mod 31))
  in
  let encoded = Array.map Wt_strings.Binarize.of_bytes strings in
  let naive = Naive.of_array encoded in
  let check_variant (type a)
      (module V : Wt_core.Indexed_sequence.STRING_API with type t = a) name (wt : a) =
    for pos = 0 to Array.length strings - 1 do
      Alcotest.(check string)
        (Printf.sprintf "%s access %d" name pos)
        (Wt_strings.Binarize.to_bytes (Naive.access naive pos))
        (Result.get_ok (V.access wt ~pos))
    done;
    Array.iteri
      (fun i s ->
        let e = Wt_strings.Binarize.of_bytes s in
        check_int
          (Printf.sprintf "%s rank %d" name i)
          (Naive.rank naive e (i + 1))
          (Result.get_ok (V.rank wt s ~pos:(i + 1)));
        Alcotest.(check (option int))
          (Printf.sprintf "%s select %d" name i)
          (Naive.select naive e (i mod 3))
          (Result.to_option (V.select wt s ~count:(i mod 3))))
      strings;
    (* the batch engine with probes off: results still match the scalar
       API, and (checked below) no counter moves *)
    let ops =
      Array.init 64 (fun i ->
          match i mod 3 with
          | 0 -> Wt_core.Indexed_sequence.Access { pos = i }
          | 1 -> Wt_core.Indexed_sequence.Rank { s = strings.(i); pos = i + 1 }
          | _ ->
              Wt_core.Indexed_sequence.Select { s = strings.(i); count = i mod 5 })
    in
    Array.iteri
      (fun i r ->
        let scalar =
          match ops.(i) with
          | Wt_core.Indexed_sequence.Access { pos } ->
              Result.map (fun s -> Wt_core.Indexed_sequence.Str s) (V.access wt ~pos)
          | Wt_core.Indexed_sequence.Rank { s; pos } ->
              Result.map (fun c -> Wt_core.Indexed_sequence.Int c) (V.rank wt s ~pos)
          | Wt_core.Indexed_sequence.Select { s; count } ->
              Result.map (fun p -> Wt_core.Indexed_sequence.Int p) (V.select wt s ~count)
          | _ -> assert false
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s batch[%d] = scalar" name i)
          true (r = scalar))
      (V.query_batch wt ops)
  in
  check_variant (module Wtrie.Static) "static" (Wtrie.Static.of_array strings);
  check_variant (module Wtrie.Append) "append" (Wtrie.Append.of_array strings);
  check_variant (module Wtrie.Dynamic) "dynamic" (Wtrie.Dynamic.of_array strings);
  Array.iter
    (fun m -> check_int (Metric.name m ^ " untouched") 0 (Probe.counter m))
    Metric.all;
  Alcotest.(check (list (pair string int))) "no counters" [] (Probe.counter_list ());
  Alcotest.(check int) "no latencies" 0 (List.length (Probe.latency_list ()))

(* Enabling probes must not change any result either. *)
let test_enabled_same_results () =
  let strings = Array.init 64 (fun i -> Printf.sprintf "s/%d" (i mod 10)) in
  let wt = Str.Static.of_array strings in
  let run () =
    Array.to_list
      (Array.mapi
         (fun i s ->
           ( Str.Static.access wt ~pos:i,
             Str.Static.count wt s,
             Str.Static.select wt s ~count:0 ))
         strings)
  in
  let off = run () in
  let on = probed run in
  Alcotest.(check bool) "probe state does not affect results" true (off = on)

(* ------------------------------------------------------------------ *)
(* (d) The live telemetry plane: exposition shape, snapshot deltas, the
   runtime-events bridge, scraping while other domains record, and the
   docs-sync lint keeping docs/observability.md's metric table honest. *)

module Export = Wt_obs.Export
module Runtime = Wt_obs.Runtime

let index_of s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then -1 else if String.sub s i m = sub then i else go (i + 1)
  in
  go from

let contains s sub = index_of s sub 0 >= 0

(* Every non-comment, non-empty line must be "name[{labels}] value"
   with a wtrie_ name and a numeric value — the property any Prometheus
   scraper needs from the page. *)
let check_exposition_parses page =
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then begin
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "unparseable exposition line: %s" line
        | Some i ->
            let v = String.sub line (i + 1) (String.length line - i - 1) in
            if float_of_string_opt v = None then
              Alcotest.failf "non-numeric value in exposition line: %s" line;
            if not (String.length line > 6 && String.sub line 0 6 = "wtrie_") then
              Alcotest.failf "exposition series not under wtrie_: %s" line
      end)
    (String.split_on_char '\n' page)

(* Value of counter [name] on an exposition page, or -1 if absent. *)
let exposition_counter page name =
  let prefix = "wtrie_" ^ name ^ "_total " in
  let p = String.length prefix in
  List.fold_left
    (fun acc l ->
      if acc >= 0 then acc
      else if String.length l > p && String.sub l 0 p = prefix then
        Option.value ~default:(-1) (int_of_string_opt (String.sub l p (String.length l - p)))
      else acc)
    (-1)
    (String.split_on_char '\n' page)

let test_prometheus_exposition () =
  let ticks = ref 0 in
  Probe.set_clock (fun () ->
      ticks := !ticks + 1000;
      !ticks);
  Fun.protect ~finally:(fun () -> Probe.set_clock Probe.default_clock) @@ fun () ->
  probed (fun () ->
      Probe.hit Metric.Wt_rank;
      Probe.time Metric.Wt_rank (fun () -> ());
      Export.register_gauge "test_gauge" (fun () -> 42.);
      Fun.protect ~finally:(fun () -> Export.unregister_gauge "test_gauge")
      @@ fun () ->
      let page = Export.prometheus () in
      check_exposition_parses page;
      (* zero-filled: an untouched counter still has a series *)
      Alcotest.(check bool) "untouched series exists" true
        (contains page "wtrie_rrr_select_total 0");
      check_int "hit counter" 1 (exposition_counter page "wt_rank");
      (* 1000 injected ns land in bucket [512, 1024): upper bound 1024 *)
      Alcotest.(check bool) "histogram bucket" true
        (contains page "wtrie_wt_rank_ns_bucket{le=\"1024\"} 1");
      Alcotest.(check bool) "histogram +Inf" true
        (contains page "wtrie_wt_rank_ns_bucket{le=\"+Inf\"} 1");
      Alcotest.(check bool) "histogram sum from mean*count" true
        (contains page "wtrie_wt_rank_ns_sum 1000");
      Alcotest.(check bool) "histogram count" true
        (contains page "wtrie_wt_rank_ns_count 1");
      Alcotest.(check bool) "gauge sampled" true (contains page "wtrie_test_gauge 42");
      (* empty histograms stay off the page *)
      Alcotest.(check bool) "empty histogram skipped" false
        (contains page "wtrie_rrr_select_ns_"))

let test_export_delta () =
  probed (fun () ->
      Probe.hit Metric.Wt_rank;
      Probe.record Metric.Wt_rank 0 |> ignore;
      let a = Export.capture () in
      Probe.hit Metric.Wt_rank;
      Probe.hit Metric.Wt_rank;
      Probe.duration Metric.Exec_level 1000;
      let b = Export.capture () in
      let d = Export.delta a b in
      let idx m = Metric.index m in
      check_int "counter delta" 2 d.Export.counters.(idx Metric.Wt_rank);
      check_int "untouched delta" 0 d.Export.counters.(idx Metric.Rrr_rank);
      let h = d.Export.hists.(idx Metric.Exec_level) in
      check_int "hist delta count" 1 h.Histogram.count;
      check_int "hist delta p50" 512 h.Histogram.p50_ns)

let test_runtime_bridge () =
  probed (fun () ->
      Runtime.start ();
      Alcotest.(check bool) "bridge started" true (Runtime.started ());
      (* force collections and drain the ring until the pauses appear *)
      let tries = ref 0 in
      (* pauses are histogram samples ([Probe.duration]), not counters *)
      let moved () =
        (Probe.histogram Metric.Rt_gc_minor).Histogram.count
        + (Probe.histogram Metric.Rt_gc_major).Histogram.count
        > 0
      in
      while (not (moved ())) && !tries < 50 do
        incr tries;
        ignore (Sys.opaque_identity (Array.init 100_000 (fun i -> string_of_int i)));
        Gc.minor ();
        Gc.full_major ();
        ignore (Runtime.poll ())
      done;
      Alcotest.(check bool) "gc pauses observed" true (moved ());
      Alcotest.(check bool) "gc time accumulated" true
        (Probe.counter Metric.Rt_gc_ns > 0);
      Alcotest.(check bool) "per-domain gc time" true (Runtime.total_gc_ns () > 0))

(* Two domains hammer the recorder while the main domain scrapes: every
   page parses and the scraped counter never goes backwards. *)
let test_concurrent_scrape () =
  probed (fun () ->
      let per_domain = 200_000 in
      let hammer () =
        for i = 1 to per_domain do
          Probe.hit Metric.Wt_rank;
          Probe.duration Metric.Exec_level (i land 0xfff)
        done
      in
      let d1 = Domain.spawn hammer and d2 = Domain.spawn hammer in
      let last = ref (-1) in
      for _ = 1 to 50 do
        let page = Export.prometheus () in
        check_exposition_parses page;
        let c = exposition_counter page "wt_rank" in
        Alcotest.(check bool) "counter present" true (c >= 0);
        Alcotest.(check bool)
          (Printf.sprintf "counter monotone (%d -> %d)" !last c)
          true (c >= !last);
        last := c
      done;
      Domain.join d1;
      Domain.join d2;
      check_int "all hits survived the scrapes" (2 * per_domain)
        (Probe.counter Metric.Wt_rank);
      let h = Probe.histogram Metric.Exec_level in
      check_int "all samples survived the scrapes" (2 * per_domain) h.Histogram.count)

(* The docs table between the metrics:begin/end markers must list
   exactly the metric universe — missing and stale rows are named. *)
let test_docs_sync () =
  (* dune runtest runs in _build/default/test; dune exec may run from
     the workspace root — accept either *)
  let path =
    if Sys.file_exists "../docs/observability.md" then "../docs/observability.md"
    else "docs/observability.md"
  in
  let doc =
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    really_input_string ic (in_channel_length ic)
  in
  let b = index_of doc "<!-- metrics:begin -->" 0 in
  let e = index_of doc "<!-- metrics:end -->" 0 in
  if b < 0 || e < 0 || e <= b then
    Alcotest.fail "docs/observability.md: metrics:begin/end markers missing";
  let table = String.sub doc b (e - b) in
  let documented =
    String.split_on_char '\n' table
    |> List.filter_map (fun line ->
           if String.length line > 3 && String.sub line 0 3 = "| `" then begin
             match String.index_from_opt line 3 '`' with
             | Some j -> Some (String.sub line 3 (j - 3))
             | None -> None
           end
           else None)
  in
  let universe = Array.to_list (Array.map Metric.name Metric.all) in
  let missing = List.filter (fun n -> not (List.mem n documented)) universe in
  let stale = List.filter (fun n -> not (List.mem n universe)) documented in
  if missing <> [] || stale <> [] then
    Alcotest.failf
      "docs/observability.md metric table out of sync:%s%s"
      (if missing = [] then ""
       else "\n  missing rows (declared but undocumented): " ^ String.concat ", " missing)
      (if stale = [] then ""
       else "\n  stale rows (documented but not declared): " ^ String.concat ", " stale);
  check_int "universe size" Metric.count (List.length documented)

let test_histogram_quantiles () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1; 2; 3; 1000; 1_000_000 ];
  let s = Histogram.snapshot h in
  check_int "count" 5 s.Histogram.count;
  check_int "p50 bucket lower bound" 2 s.Histogram.p50_ns;
  check_int "max exact" 1_000_000 s.Histogram.max_ns;
  Histogram.reset h;
  check_int "reset" 0 (Histogram.snapshot h).Histogram.count

let () =
  Alcotest.run "wt_obs"
    [
      ( "counters",
        [
          Alcotest.test_case "figure-2 script is counted exactly" `Quick
            test_counters_exact;
          Alcotest.test_case "mutations count splits and merges" `Quick
            test_mutation_counters;
        ] );
      ( "report",
        [
          Alcotest.test_case "json round-trip with injected clock" `Quick
            test_report_roundtrip;
          Alcotest.test_case "json corner cases" `Quick test_json_corners;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
        ] );
      ( "zero-cost",
        [
          Alcotest.test_case "disabled probes: oracle-identical, zero counters"
            `Quick test_disabled_zero_cost;
          Alcotest.test_case "enabled probes: identical results" `Quick
            test_enabled_same_results;
        ] );
      ( "export",
        [
          Alcotest.test_case "prometheus exposition shape" `Quick
            test_prometheus_exposition;
          Alcotest.test_case "snapshot deltas" `Quick test_export_delta;
          Alcotest.test_case "runtime-events bridge sees gc pauses" `Quick
            test_runtime_bridge;
        ] );
      ( "concurrent-scrape",
        [
          Alcotest.test_case "scrape under recording load parses, monotone"
            `Quick test_concurrent_scrape;
        ] );
      ( "docs-sync",
        [
          Alcotest.test_case "metric table matches the declared universe" `Quick
            test_docs_sync;
        ] );
    ]
