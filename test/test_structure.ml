(* Structural validation of the Wavelet Trie invariants through the
   public Node view, generically over all variants, plus golden tests for
   the pretty-printer and the String_api facade's corner cases. *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Xoshiro = Wt_bits.Xoshiro
module Wavelet_trie = Wt_core.Wavelet_trie
module Append_wt = Wt_core.Append_wt
module Dynamic_wt = Wt_core.Dynamic_wt
module Str = Wt_core.String_api

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Definition 3.1 invariants, checked over any Node_view:
   - internal node counts split exactly into the children's counts
     according to the bitvector;
   - internal labels are the *longest* common prefix (children cannot
     both start with the same bit unless separated by the bitvector —
     equivalently, child labels exist and the two subtrees are
     non-empty);
   - bitvector length equals subtree count;
   - iter_bits agrees with bv_access;
   - bv_access_rank agrees with (bv_access, bv_rank). *)
module Check (N : Wt_core.Node_view.S) = struct
  let rec node rng v =
    if not (N.is_leaf v) then begin
      let m = N.count v in
      check_bool "internal nonempty" true (m > 0);
      let zeros = N.bv_rank v false m and ones = N.bv_rank v true m in
      check_int "rank partition" m (zeros + ones);
      check_bool "both sides populated" true (zeros > 0 && ones > 0);
      check_int "zero child count" zeros (N.count (N.child v false));
      check_int "one child count" ones (N.count (N.child v true));
      (* spot-check bit accessors against each other *)
      let next = N.iter_bits v 0 in
      for pos = 0 to min (m - 1) 200 do
        let b = next () in
        check_bool "iter = access" b (N.bv_access v pos);
        let b', r' = N.bv_access_rank v pos in
        check_bool "access_rank bit" b b';
        check_int "access_rank rank" (N.bv_rank v b pos) r'
      done;
      (* select . rank round trip at random indices *)
      for _ = 1 to 20 do
        let b = Xoshiro.bool rng in
        let total = if b then ones else zeros in
        if total > 0 then begin
          let k = Xoshiro.int rng total in
          let p = N.bv_select v b k in
          check_bool "select bit" b (N.bv_access v p);
          check_int "rank of select" k (N.bv_rank v b p)
        end
      done;
      node rng (N.child v false);
      node rng (N.child v true)
    end
    else check_bool "leaf count positive" true (N.count v > 0)

  let trie rng t total =
    match N.root t with
    | None -> check_int "empty trie" 0 total
    | Some root ->
        check_int "root count" total (N.count root);
        node rng root
end

let sample rng n =
  Array.init n (fun _ ->
      Binarize.of_bytes
        (String.init (1 + Xoshiro.int rng 5) (fun _ ->
             Char.chr (Char.code 'a' + Xoshiro.int rng 4))))

let test_structure_static () =
  let rng = Xoshiro.create 21 in
  let module C = Check (Wavelet_trie.Node) in
  List.iter
    (fun n ->
      let seq = sample rng n in
      C.trie rng (Wavelet_trie.of_array seq) n)
    [ 0; 1; 10; 500; 3000 ]

let test_structure_append () =
  let rng = Xoshiro.create 22 in
  let module C = Check (Append_wt.Node) in
  let seq = sample rng 2000 in
  (* incremental build exercises split paths *)
  let wt = Append_wt.create () in
  Array.iter (Append_wt.append wt) seq;
  C.trie rng wt 2000

let test_structure_dynamic () =
  let rng = Xoshiro.create 23 in
  let module C = Check (Dynamic_wt.Node) in
  let seq = sample rng 1500 in
  let wt = Dynamic_wt.of_array seq in
  (* churn it *)
  for _ = 1 to 500 do
    if Xoshiro.bool rng && Dynamic_wt.length wt > 0 then
      Dynamic_wt.delete wt (Xoshiro.int rng (Dynamic_wt.length wt))
    else
      Dynamic_wt.insert wt
        (Xoshiro.int rng (Dynamic_wt.length wt + 1))
        (sample rng 1).(0)
  done;
  C.trie rng wt (Dynamic_wt.length wt)

let test_structure_succinct () =
  let rng = Xoshiro.create 24 in
  let module C = Check (Wt_core.Succinct_wt.Node) in
  let seq = sample rng 1200 in
  C.trie rng (Wt_core.Succinct_wt.of_array seq) 1200

(* ------------------------------------------------------------------ *)

let test_pp_golden () =
  let seq =
    List.map Bitstring.of_string
      [ "0001"; "0011"; "0100"; "00100"; "0100"; "00100"; "0100" ]
  in
  let wt = Wavelet_trie.of_list seq in
  let rendered = Format.asprintf "%a" Wavelet_trie.pp wt in
  let expected =
    "a=0  b=0010101\n\
     +-0: a={e}  b=0111\n\
     |    +-0: a=1  (leaf x1)\n\
     |    +-1: a={e}  b=100\n\
     |         +-0: a=0  (leaf x2)\n\
     |         +-1: a={e}  (leaf x1)\n\
     +-1: a=00  (leaf x3)"
  in
  Alcotest.(check string) "figure 2 rendering" expected rendered;
  Alcotest.(check string)
    "empty rendering" "<empty sequence>"
    (Format.asprintf "%a" Wavelet_trie.pp (Wavelet_trie.of_array [||]))

let test_string_api_empty_prefix () =
  let wt = Str.Static.of_list [ "a"; "b"; "a" ] in
  (* the empty byte prefix matches every stored string *)
  check_int "empty prefix counts all" 3 (Str.Static.count_prefix wt ~prefix:"");
  Alcotest.(check (result int reject)) "empty prefix select" (Ok 1)
    (Str.Static.select_prefix wt ~prefix:"" ~count:1);
  (* and the empty *string* is storable and distinct from the prefix *)
  let wt = Str.Static.of_list [ ""; "x"; "" ] in
  check_int "empty string count" 2 (Str.Static.count wt "");
  Alcotest.(check string) "empty string access" ""
    (Result.get_ok (Str.Static.access wt ~pos:0));
  check_int "empty prefix still counts all" 3 (Str.Static.count_prefix wt ~prefix:"")

let test_wavelet_tree_backends_agree () =
  let rng = Xoshiro.create 26 in
  let sigma = 23 in
  let a = Array.init 4000 (fun _ -> Xoshiro.int rng sigma) in
  let p = Wt_wavelet_tree.Wavelet_tree.Over_plain.of_array ~sigma a in
  let r = Wt_wavelet_tree.Wavelet_tree.Over_rrr.of_array ~sigma a in
  let module P = Wt_wavelet_tree.Wavelet_tree.Over_plain in
  let module R = Wt_wavelet_tree.Wavelet_tree.Over_rrr in
  for lvl = 0 to P.levels p - 1 do
    Alcotest.(check string)
      (Printf.sprintf "level %d" lvl)
      (P.level_bits p lvl) (R.level_bits r lvl)
  done;
  for _ = 1 to 500 do
    let sym = Xoshiro.int rng sigma and pos = Xoshiro.int rng 4001 in
    check_int "rank agree" (P.rank p sym pos) (R.rank r sym pos)
  done

let () =
  Alcotest.run "wt_structure"
    [
      ( "node-view invariants",
        [
          Alcotest.test_case "static" `Quick test_structure_static;
          Alcotest.test_case "append-only" `Quick test_structure_append;
          Alcotest.test_case "dynamic (churned)" `Quick test_structure_dynamic;
          Alcotest.test_case "succinct" `Quick test_structure_succinct;
        ] );
      ( "rendering",
        [ Alcotest.test_case "pp golden" `Quick test_pp_golden ] );
      ( "facade corners",
        [ Alcotest.test_case "empty prefix/string" `Quick test_string_api_empty_prefix ] );
      ( "backends",
        [ Alcotest.test_case "plain/rrr agree" `Quick test_wavelet_tree_backends_agree ] );
    ]
