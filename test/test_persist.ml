(* Tests for index serialization (Persist): roundtrips for each variant,
   header validation, post-load mutability. *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Xoshiro = Wt_bits.Xoshiro
module Wavelet_trie = Wt_core.Wavelet_trie
module Append_wt = Wt_core.Append_wt
module Dynamic_wt = Wt_core.Dynamic_wt
module Persist = Wt_core.Persist

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("wt_persist_" ^ name)

let sample_seq n =
  let rng = Xoshiro.create 4 in
  Array.init n (fun _ ->
      Binarize.of_bytes
        (String.init (1 + Xoshiro.int rng 6) (fun _ ->
             Char.chr (Char.code 'a' + Xoshiro.int rng 4))))

let test_static_roundtrip () =
  let seq = sample_seq 500 in
  let wt = Wavelet_trie.of_array seq in
  let path = tmp "static.wtx" in
  Persist.save_static wt path;
  check_bool "recognized" true (Persist.is_index_file path);
  let wt' = Persist.load_static path in
  check_int "length" (Wavelet_trie.length wt) (Wavelet_trie.length wt');
  Alcotest.(check (list (pair string (option string))))
    "structure" (Wavelet_trie.dump wt) (Wavelet_trie.dump wt');
  for i = 0 to 499 do
    check_bool "content" true (Bitstring.equal seq.(i) (Wavelet_trie.access wt' i))
  done;
  Sys.remove path

let test_append_roundtrip_and_growth () =
  let seq = sample_seq 300 in
  let wt = Append_wt.of_array seq in
  let path = tmp "append.wtx" in
  Persist.save_append wt path;
  let wt' = Persist.load_append path in
  Append_wt.check_invariants wt';
  (* the loaded index keeps accepting appends *)
  Append_wt.append wt' (Binarize.of_bytes "post-load");
  check_int "grown" 301 (Append_wt.length wt');
  check_int "found" 1 (Append_wt.rank wt' (Binarize.of_bytes "post-load") 301);
  Sys.remove path

let test_dynamic_roundtrip_and_updates () =
  let seq = sample_seq 300 in
  let wt = Dynamic_wt.of_array seq in
  let path = tmp "dynamic.wtx" in
  Persist.save_dynamic wt path;
  let wt' = Persist.load_dynamic path in
  Dynamic_wt.check_invariants wt';
  Dynamic_wt.insert wt' 150 (Binarize.of_bytes "fresh");
  Dynamic_wt.delete wt' 0;
  Dynamic_wt.check_invariants wt';
  check_int "length" 300 (Dynamic_wt.length wt');
  Sys.remove path

let test_header_validation () =
  let seq = sample_seq 10 in
  let path = tmp "mix.wtx" in
  Persist.save_static (Wavelet_trie.of_array seq) path;
  (* loading as the wrong variant fails loudly *)
  (match Persist.load_append path with
  | exception Persist.Format_error _ -> ()
  | _ -> Alcotest.fail "expected Format_error on variant mismatch");
  Sys.remove path;
  (* garbage is rejected *)
  let garbage = tmp "garbage.bin" in
  let oc = open_out_bin garbage in
  output_string oc "not an index at all";
  close_out oc;
  check_bool "not recognized" false (Persist.is_index_file garbage);
  (match Persist.load_static garbage with
  | exception Persist.Format_error _ -> ()
  | _ -> Alcotest.fail "expected Format_error on garbage");
  Sys.remove garbage

let test_truncated_payload () =
  (* failure injection: chop a valid index mid-payload *)
  let path = tmp "trunc.wtx" in
  Persist.save_static (Wavelet_trie.of_array (sample_seq 200)) path;
  let full = In_channel.with_open_bin path In_channel.input_all in
  let cut = String.sub full 0 (String.length full * 2 / 3) in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc cut);
  (match Persist.load_static path with
  | exception Persist.Format_error _ -> ()
  | exception e -> Alcotest.fail ("unexpected exception " ^ Printexc.to_string e)
  | _ -> Alcotest.fail "expected Format_error on truncated payload");
  (* chop inside the header *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub full 0 5));
  (match Persist.load_static path with
  | exception Persist.Format_error _ -> ()
  | exception e -> Alcotest.fail ("unexpected exception " ^ Printexc.to_string e)
  | _ -> Alcotest.fail "expected Format_error on truncated header");
  Sys.remove path

(* Property: any single flipped byte, and any strict truncation, of any
   saved variant must raise Format_error — never succeed, never escape
   as a different exception.  (Exhaustive sweeps live in test_faults.) *)
let test_random_corruption () =
  let rng = Xoshiro.create 77 in
  let check_variant name save load =
    let path = tmp ("corrupt_" ^ name ^ ".wtx") in
    save path;
    let pristine = In_channel.with_open_bin path In_channel.input_all in
    let len = String.length pristine in
    let rewrite s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s) in
    let expect_format_error what =
      match load path with
      | exception Persist.Format_error _ -> ()
      | exception e ->
          Alcotest.fail
            (Printf.sprintf "%s, %s: unexpected exception %s" name what (Printexc.to_string e))
      | () -> Alcotest.fail (Printf.sprintf "%s, %s: load succeeded on a corrupted index" name what)
    in
    for trial = 1 to 48 do
      let off = Xoshiro.int rng len in
      let b = Bytes.of_string pristine in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor (1 lsl (trial mod 8))));
      rewrite (Bytes.to_string b);
      expect_format_error (Printf.sprintf "bit flip at offset %d" off);
      let cut = Xoshiro.int rng len in
      rewrite (String.sub pristine 0 cut);
      expect_format_error (Printf.sprintf "truncated to %d bytes" cut)
    done;
    rewrite pristine;
    load path;
    Sys.remove path
  in
  check_variant "static"
    (fun p -> Persist.save_static (Wavelet_trie.of_array (sample_seq 150)) p)
    (fun p -> ignore (Persist.load_static p : Wavelet_trie.t));
  check_variant "append"
    (fun p -> Persist.save_append (Append_wt.of_array (sample_seq 150)) p)
    (fun p -> ignore (Persist.load_append p : Append_wt.t));
  check_variant "dynamic"
    (fun p -> Persist.save_dynamic (Dynamic_wt.of_array (sample_seq 150)) p)
    (fun p -> ignore (Persist.load_dynamic p : Dynamic_wt.t))

let () =
  Alcotest.run "wt_persist"
    [
      ( "persist",
        [
          Alcotest.test_case "static roundtrip" `Quick test_static_roundtrip;
          Alcotest.test_case "append roundtrip + growth" `Quick test_append_roundtrip_and_growth;
          Alcotest.test_case "dynamic roundtrip + updates" `Quick test_dynamic_roundtrip_and_updates;
          Alcotest.test_case "header validation" `Quick test_header_validation;
          Alcotest.test_case "truncated files" `Quick test_truncated_payload;
          Alcotest.test_case "random corruption property" `Quick test_random_corruption;
        ] );
    ]
