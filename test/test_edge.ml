(* Targeted edge cases across the stack: degenerate shapes, extreme
   strings, worst-case bit patterns, and boundary positions. *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Xoshiro = Wt_bits.Xoshiro
module Wavelet_trie = Wt_core.Wavelet_trie
module Append_wt = Wt_core.Append_wt
module Dynamic_wt = Wt_core.Dynamic_wt
module Range = Wt_core.Range
module Dyn_rle = Wt_bitvector.Dyn_rle
module Appendable = Wt_bitvector.Appendable

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bs = Bitstring.of_string

(* ------------------------------------------------------------------ *)
(* Degenerate sequences *)

let test_single_string_repeated () =
  (* One distinct string: the trie is a single leaf, no bitvectors. *)
  let s = Binarize.of_bytes "only" in
  let seq = Array.make 1000 s in
  let wt = Wavelet_trie.of_array seq in
  check_int "static distinct" 1 (Wavelet_trie.distinct_count wt);
  check_int "static rank" 500 (Wavelet_trie.rank wt s 500);
  Alcotest.(check (option int)) "static select" (Some 999) (Wavelet_trie.select wt s 999);
  let d = Dynamic_wt.of_array seq in
  Dynamic_wt.check_invariants d;
  check_int "dyn rank" 500 (Dynamic_wt.rank d s 500);
  (* delete all but one *)
  for _ = 1 to 999 do
    Dynamic_wt.delete d 0
  done;
  check_int "dyn one left" 1 (Dynamic_wt.length d);
  check_bool "dyn access" true (Bitstring.equal s (Dynamic_wt.access d 0))

let test_two_strings_first_bit_split () =
  (* Strings diverging at bit 0: root label is empty. *)
  let a = bs "0" and b = bs "1" in
  let wt = Wavelet_trie.of_array [| a; b; a; b; b |] in
  Alcotest.(check (list (pair string (option string))))
    "structure"
    [ ("", Some "01011"); ("", None); ("", None) ]
    (Wavelet_trie.dump wt);
  check_int "rank a" 2 (Wavelet_trie.rank wt a 5);
  check_int "rank b" 3 (Wavelet_trie.rank wt b 5)

let test_very_long_strings () =
  (* Labels far beyond one 62-bit word; exercises word-spanning lcp. *)
  let rng = Xoshiro.create 5 in
  let mk tag =
    Binarize.of_bytes (tag ^ String.init 300 (fun _ -> Char.chr (65 + Xoshiro.int rng 4)))
  in
  let pool = Array.init 10 (fun i -> mk (Printf.sprintf "shared/deep/path/%d/" i)) in
  let seq = Array.init 200 (fun _ -> pool.(Xoshiro.int rng 10)) in
  let wt = Wavelet_trie.of_array seq in
  Array.iteri
    (fun i s -> check_bool "access long" true (Bitstring.equal s (Wavelet_trie.access wt i)))
    seq;
  Array.iter
    (fun s ->
      let total = Wavelet_trie.rank wt s 200 in
      check_bool "positive" true (total > 0);
      Alcotest.(check (option int)) "select last" (Wavelet_trie.select wt s (total - 1))
        (Wavelet_trie.select wt s (total - 1)))
    pool;
  (* common prefix of everything *)
  let p = Binarize.of_bytes "shared/deep/path/" in
  let p = Bitstring.prefix p (Bitstring.length p - 1) in
  check_int "all share prefix" 200 (Wavelet_trie.rank_prefix wt p 200)

let test_prefix_longer_than_strings () =
  let wt = Wavelet_trie.of_array [| bs "01"; bs "10" |] in
  check_int "too-long prefix" 0 (Wavelet_trie.rank_prefix wt (bs "0101010101") 2);
  Alcotest.(check (option int))
    "too-long select_prefix" None
    (Wavelet_trie.select_prefix wt (bs "0101010101") 0)

let test_prefix_ending_inside_label () =
  (* prefix ends strictly inside a node label *)
  let wt = Wavelet_trie.of_array [| bs "000001"; bs "000010"; bs "111111" |] in
  check_int "mid-label prefix" 2 (Wavelet_trie.rank_prefix wt (bs "000") 3);
  check_int "mid-label prefix 2" 1 (Wavelet_trie.rank_prefix wt (bs "11111") 3);
  check_int "mismatch inside label" 0 (Wavelet_trie.rank_prefix wt (bs "001") 3);
  (* range.distinct restricted to a mid-label prefix *)
  let d = Range.Pointer.distinct wt ~prefix:(bs "000") ~lo:0 ~hi:3 in
  check_int "distinct under mid-label prefix" 2 (List.length d);
  List.iter
    (fun (s, c) ->
      check_int "count 1" 1 c;
      check_bool "has prefix" true (Bitstring.is_prefix ~prefix:(bs "000") s))
    d

(* ------------------------------------------------------------------ *)
(* Worst-case bit patterns for the dynamic bitvector *)

let test_dyn_rle_alternating () =
  (* alternating bits = maximal number of runs; γ(1) codes *)
  let n = 20_000 in
  let bits = Array.init n (fun i -> i land 1 = 1) in
  let bv = Dyn_rle.of_bits bits in
  Dyn_rle.check_invariants bv;
  check_int "ones" (n / 2) (Dyn_rle.ones bv);
  for _ = 1 to 200 do
    let pos = Xoshiro.int (Xoshiro.create 1) n in
    ignore pos
  done;
  let rng = Xoshiro.create 1 in
  for _ = 1 to 500 do
    let pos = Xoshiro.int rng n in
    check_bool "access" (bits.(pos)) (Dyn_rle.access bv pos);
    check_int "rank" (pos / 2) (Dyn_rle.rank bv true (pos - (pos land 1)))
  done;
  (* flipping a middle bit splits runs *)
  Dyn_rle.delete bv 1000;
  Dyn_rle.insert bv 1000 (not bits.(1000));
  Dyn_rle.check_invariants bv;
  check_bool "flipped" (not bits.(1000)) (Dyn_rle.access bv 1000)

let test_dyn_rle_giant_runs () =
  let bv = Dyn_rle.create () in
  Dyn_rle.insert bv 0 true;
  (* grow a giant run by repeated inserts in the middle *)
  for _ = 1 to 5000 do
    Dyn_rle.insert bv (Dyn_rle.length bv / 2) true
  done;
  check_int "all ones" 5001 (Dyn_rle.ones bv);
  check_bool "still tiny" true (Dyn_rle.space_bits bv < 2048);
  Dyn_rle.check_invariants bv;
  (* now punch zeros periodically *)
  let rng = Xoshiro.create 3 in
  for _ = 1 to 1000 do
    Dyn_rle.insert bv (Xoshiro.int rng (Dyn_rle.length bv + 1)) false
  done;
  Dyn_rle.check_invariants bv;
  check_int "zeros" 1000 (Dyn_rle.zeros bv)

let test_appendable_exact_boundaries () =
  (* appends that land exactly on segment boundaries (4096 bits) *)
  let bv = Appendable.create () in
  for i = 0 to (3 * 4096) - 1 do
    Appendable.append bv (i land 7 = 0)
  done;
  Appendable.check_invariants bv;
  check_int "len" (3 * 4096) (Appendable.length bv);
  (* boundary positions *)
  List.iter
    (fun pos ->
      let expected = ref 0 in
      for i = 0 to pos - 1 do
        if i land 7 = 0 then incr expected
      done;
      check_int (Printf.sprintf "rank@%d" pos) !expected (Appendable.rank bv true pos))
    [ 0; 1; 4095; 4096; 4097; 8191; 8192; 12288 ]

(* ------------------------------------------------------------------ *)
(* Dynamic trie structural edge cases *)

let test_dynamic_root_split_and_merge () =
  let d = Dynamic_wt.create () in
  Dynamic_wt.append d (bs "0000");
  (* split at the very first bit *)
  Dynamic_wt.append d (bs "1111");
  check_int "two" 2 (Dynamic_wt.distinct_count d);
  Alcotest.(check (list (pair string (option string))))
    "root split"
    [ ("", Some "01"); ("000", None); ("111", None) ]
    (Dynamic_wt.dump d);
  (* delete one side: merge back to a single leaf with full label *)
  Dynamic_wt.delete d 1;
  Alcotest.(check (list (pair string (option string))))
    "merged" [ ("0000", None) ] (Dynamic_wt.dump d);
  Dynamic_wt.check_invariants d

let test_dynamic_interleaved_split_merge_storm () =
  (* repeatedly add and remove a diverging string at the same spot *)
  let base = Array.init 50 (fun i -> Binarize.of_bytes (Printf.sprintf "k%02d" (i mod 5))) in
  let d = Dynamic_wt.of_array base in
  let probe = Binarize.of_bytes "k0z" in
  let before = Dynamic_wt.dump d in
  for _ = 1 to 100 do
    Dynamic_wt.insert d 25 probe;
    Dynamic_wt.delete d 25
  done;
  Alcotest.(check (list (pair string (option string))))
    "stable after storm" before (Dynamic_wt.dump d);
  Dynamic_wt.check_invariants d

let test_append_only_first_string_longest () =
  (* first string longer than all later ones; splits happen near the root *)
  let wt = Append_wt.create () in
  Append_wt.append wt (Binarize.of_bytes "aaaaaaaaaaaaaaaa");
  Append_wt.append wt (Binarize.of_bytes "b");
  Append_wt.append wt (Binarize.of_bytes "a");
  Append_wt.append wt (Binarize.of_bytes "aaaa");
  Append_wt.check_invariants wt;
  check_int "four" 4 (Append_wt.length wt);
  check_int "distinct" 4 (Append_wt.distinct_count wt);
  List.iteri
    (fun i w ->
      check_bool
        (Printf.sprintf "access %d" i)
        true
        (Bitstring.equal (Binarize.of_bytes w) (Append_wt.access wt i)))
    [ "aaaaaaaaaaaaaaaa"; "b"; "a"; "aaaa" ]

(* ------------------------------------------------------------------ *)
(* Range iterator boundary conditions *)

let test_iter_range_boundaries () =
  let words = [| "x"; "yy"; "zzz" |] in
  let rng = Xoshiro.create 4 in
  let seq = Array.init 300 (fun _ -> Binarize.of_bytes words.(Xoshiro.int rng 3)) in
  let wt = Wavelet_trie.of_array seq in
  (* empty range at every position *)
  for lo = 0 to 300 do
    let got = ref 0 in
    Range.Pointer.iter_range wt ~lo ~hi:lo (fun _ -> incr got);
    check_int "empty range" 0 !got
  done;
  (* single-element ranges equal access *)
  for pos = 0 to 299 do
    let got = ref [] in
    Range.Pointer.iter_range wt ~lo:pos ~hi:(pos + 1) (fun s -> got := s :: !got);
    match !got with
    | [ s ] -> check_bool "singleton" true (Bitstring.equal s seq.(pos))
    | _ -> Alcotest.fail "expected exactly one element"
  done;
  (* full range *)
  let got = ref 0 in
  Range.Pointer.iter_range wt ~lo:0 ~hi:300 (fun _ -> incr got);
  check_int "full" 300 !got

let () =
  Alcotest.run "wt_edge"
    [
      ( "degenerate sequences",
        [
          Alcotest.test_case "single string repeated" `Quick test_single_string_repeated;
          Alcotest.test_case "first-bit split" `Quick test_two_strings_first_bit_split;
          Alcotest.test_case "very long strings" `Quick test_very_long_strings;
          Alcotest.test_case "prefix longer than strings" `Quick test_prefix_longer_than_strings;
          Alcotest.test_case "prefix inside label" `Quick test_prefix_ending_inside_label;
        ] );
      ( "bitvector worst cases",
        [
          Alcotest.test_case "alternating bits" `Quick test_dyn_rle_alternating;
          Alcotest.test_case "giant runs" `Quick test_dyn_rle_giant_runs;
          Alcotest.test_case "segment boundaries" `Quick test_appendable_exact_boundaries;
        ] );
      ( "trie reshaping",
        [
          Alcotest.test_case "root split and merge" `Quick test_dynamic_root_split_and_merge;
          Alcotest.test_case "split/merge storm" `Quick test_dynamic_interleaved_split_merge_storm;
          Alcotest.test_case "long first string" `Quick test_append_only_first_string_longest;
        ] );
      ( "range boundaries",
        [ Alcotest.test_case "iter_range boundaries" `Quick test_iter_range_boundaries ] );
    ]
