(* Tests for the Section 5 range algorithms, over all three Wavelet Trie
   variants, against naive scans. *)

module Bitstring = Wt_strings.Bitstring
module Binarize = Wt_strings.Binarize
module Xoshiro = Wt_bits.Xoshiro
module Wavelet_trie = Wt_core.Wavelet_trie
module Flat_wt = Wt_core.Flat_wt
module Append_wt = Wt_core.Append_wt
module Dynamic_wt = Wt_core.Dynamic_wt
module Range = Wt_core.Range

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let words =
  [| "a"; "ab"; "abc"; "b"; "ba"; "bb"; "c"; "ca"; "cb"; "cc" |]

let make_seq rng n = Array.init n (fun _ -> words.(Xoshiro.int rng (Array.length words)))

let encode = Binarize.of_bytes

(* naive helpers over the raw word array *)
let naive_slice seq lo hi = Array.to_list (Array.sub seq lo (hi - lo))

let naive_distinct seq lo hi =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun w -> Hashtbl.replace tbl w (1 + Option.value ~default:0 (Hashtbl.find_opt tbl w)))
    (naive_slice seq lo hi);
  Hashtbl.fold (fun w c acc -> (w, c) :: acc) tbl [] |> List.sort compare

let naive_majority seq lo hi =
  let total = hi - lo in
  List.find_opt (fun (_, c) -> 2 * c > total) (naive_distinct seq lo hi)

let naive_at_least seq lo hi t =
  List.filter (fun (_, c) -> c >= t) (naive_distinct seq lo hi)

let word_prefix w =
  (* the encoded bit-prefix meaning "starts with byte string w" *)
  let e = encode w in
  Bitstring.prefix e (Bitstring.length e - 1)

(* decoded results back to words *)
let decode_list l = List.map (fun (s, c) -> (Binarize.to_bytes s, c)) l

(* Small wrappers let the same exercise run over each variant. *)
type ops = {
  iter : ?prefix:Bitstring.t -> lo:int -> hi:int -> (Bitstring.t -> unit) -> unit;
  distinct : ?prefix:Bitstring.t -> lo:int -> hi:int -> unit -> (Bitstring.t * int) list;
  majority : ?prefix:Bitstring.t -> lo:int -> hi:int -> unit -> (Bitstring.t * int) option;
  at_least :
    ?prefix:Bitstring.t -> lo:int -> hi:int -> threshold:int -> unit -> (Bitstring.t * int) list;
  count_range : prefix:Bitstring.t -> lo:int -> hi:int -> int;
}

let static_ops seq =
  let wt = Flat_wt.of_array (Array.map encode seq) in
  {
    iter = (fun ?prefix ~lo ~hi f -> Range.Static.iter_range ?prefix wt ~lo ~hi f);
    distinct = (fun ?prefix ~lo ~hi () -> Range.Static.distinct ?prefix wt ~lo ~hi);
    majority = (fun ?prefix ~lo ~hi () -> Range.Static.majority ?prefix wt ~lo ~hi);
    at_least =
      (fun ?prefix ~lo ~hi ~threshold () ->
        Range.Static.at_least ?prefix wt ~lo ~hi ~threshold);
    count_range = (fun ~prefix ~lo ~hi -> Range.Static.count_range wt ~prefix ~lo ~hi);
  }

let append_ops seq =
  let wt = Append_wt.of_array (Array.map encode seq) in
  {
    iter = (fun ?prefix ~lo ~hi f -> Range.Append.iter_range ?prefix wt ~lo ~hi f);
    distinct = (fun ?prefix ~lo ~hi () -> Range.Append.distinct ?prefix wt ~lo ~hi);
    majority = (fun ?prefix ~lo ~hi () -> Range.Append.majority ?prefix wt ~lo ~hi);
    at_least =
      (fun ?prefix ~lo ~hi ~threshold () ->
        Range.Append.at_least ?prefix wt ~lo ~hi ~threshold);
    count_range = (fun ~prefix ~lo ~hi -> Range.Append.count_range wt ~prefix ~lo ~hi);
  }

let dynamic_ops seq =
  let wt = Dynamic_wt.of_array (Array.map encode seq) in
  {
    iter = (fun ?prefix ~lo ~hi f -> Range.Dynamic.iter_range ?prefix wt ~lo ~hi f);
    distinct = (fun ?prefix ~lo ~hi () -> Range.Dynamic.distinct ?prefix wt ~lo ~hi);
    majority = (fun ?prefix ~lo ~hi () -> Range.Dynamic.majority ?prefix wt ~lo ~hi);
    at_least =
      (fun ?prefix ~lo ~hi ~threshold () ->
        Range.Dynamic.at_least ?prefix wt ~lo ~hi ~threshold);
    count_range = (fun ~prefix ~lo ~hi -> Range.Dynamic.count_range wt ~prefix ~lo ~hi);
  }

let exercise name ops seq rng =
  let n = Array.length seq in
  for _ = 1 to 60 do
    let lo = Xoshiro.int rng (n + 1) in
    let hi = lo + Xoshiro.int rng (n - lo + 1) in
    (* sequential access *)
    let got = ref [] in
    ops.iter ~lo ~hi (fun s -> got := Binarize.to_bytes s :: !got);
    Alcotest.(check (list string))
      (name ^ " iter_range") (naive_slice seq lo hi) (List.rev !got);
    (* distinct *)
    Alcotest.(check (list (pair string int)))
      (name ^ " distinct") (naive_distinct seq lo hi)
      (List.sort compare (decode_list (ops.distinct ~lo ~hi ())));
    (* majority *)
    Alcotest.(check (option (pair string int)))
      (name ^ " majority") (naive_majority seq lo hi)
      (Option.map (fun (s, c) -> (Binarize.to_bytes s, c)) (ops.majority ~lo ~hi ()));
    (* at_least *)
    let t = 1 + Xoshiro.int rng 5 in
    Alcotest.(check (list (pair string int)))
      (name ^ " at_least")
      (naive_at_least seq lo hi t)
      (List.sort compare (decode_list (ops.at_least ~lo ~hi ~threshold:t ())));
    (* prefix-restricted variants, using byte prefixes "a", "b", "c" *)
    let pw = [| "a"; "b"; "c" |].(Xoshiro.int rng 3) in
    let p = word_prefix pw in
    let matching =
      List.filter (fun w -> String.length w >= 1 && String.sub w 0 1 = pw) (naive_slice seq lo hi)
    in
    check_int (name ^ " count_range") (List.length matching) (ops.count_range ~prefix:p ~lo ~hi);
    let got = ref [] in
    ops.iter ~prefix:p ~lo ~hi (fun s -> got := Binarize.to_bytes s :: !got);
    Alcotest.(check (list string)) (name ^ " iter prefix") matching (List.rev !got);
    let naive_pref_distinct =
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun w -> Hashtbl.replace tbl w (1 + Option.value ~default:0 (Hashtbl.find_opt tbl w)))
        matching;
      Hashtbl.fold (fun w c acc -> (w, c) :: acc) tbl [] |> List.sort compare
    in
    Alcotest.(check (list (pair string int)))
      (name ^ " distinct prefix") naive_pref_distinct
      (List.sort compare (decode_list (ops.distinct ~prefix:p ~lo ~hi ())))
  done

let test_static () =
  let rng = Xoshiro.create 100 in
  let seq = make_seq rng 300 in
  exercise "static" (static_ops seq) seq rng

let test_variants () =
  let rng = Xoshiro.create 200 in
  let seq = make_seq rng 250 in
  let qrng = Xoshiro.create 999 in
  exercise "static" (static_ops seq) seq qrng;
  let qrng = Xoshiro.create 999 in
  exercise "append" (append_ops seq) seq qrng;
  let qrng = Xoshiro.create 999 in
  exercise "dynamic" (dynamic_ops seq) seq qrng

let test_edge_cases () =
  (* empty trie *)
  let ops = static_ops [||] in
  Alcotest.(check (list (pair string int))) "distinct empty" [] (decode_list (ops.distinct ~lo:0 ~hi:0 ()));
  Alcotest.(check (option (pair string int)))
    "majority empty" None
    (Option.map (fun (s, c) -> (Binarize.to_bytes s, c)) (ops.majority ~lo:0 ~hi:0 ()));
  (* singleton *)
  let ops = static_ops [| "xyz" |] in
  Alcotest.(check (option (pair string int)))
    "majority singleton" (Some ("xyz", 1))
    (Option.map (fun (s, c) -> (Binarize.to_bytes s, c)) (ops.majority ~lo:0 ~hi:1 ()));
  (* missing prefix *)
  check_int "absent prefix" 0 (ops.count_range ~prefix:(word_prefix "q") ~lo:0 ~hi:1);
  Alcotest.(check (list (pair string int)))
    "absent prefix distinct" []
    (decode_list (ops.distinct ~prefix:(word_prefix "q") ~lo:0 ~hi:1 ()));
  (* bad ranges *)
  Alcotest.check_raises "bad range" (Invalid_argument "Range: bad range") (fun () ->
      ignore (ops.distinct ~lo:1 ~hi:0 ()));
  Alcotest.check_raises "bad threshold"
    (Invalid_argument "Range.at_least: threshold must be >= 1") (fun () ->
      ignore (ops.at_least ~lo:0 ~hi:1 ~threshold:0 ()))

let naive_top_k seq lo hi k =
  naive_distinct seq lo hi
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < k)

let test_top_k () =
  let rng = Xoshiro.create 777 in
  let seq = make_seq rng 400 in
  let wt = Flat_wt.of_array (Array.map encode seq) in
  for _ = 1 to 60 do
    let lo = Xoshiro.int rng 401 in
    let hi = lo + Xoshiro.int rng (400 - lo + 1) in
    let k = Xoshiro.int rng 6 in
    let got =
      Range.Static.top_k wt ~lo ~hi k
      |> List.map (fun (s, c) -> (Binarize.to_bytes s, c))
    in
    let expected = naive_top_k seq lo hi k in
    (* counts must match exactly; at equal counts the tie order is free *)
    Alcotest.(check (list int)) "top-k counts" (List.map snd expected) (List.map snd got);
    (* every returned string really has its count in the range *)
    List.iter
      (fun (w, c) ->
        let actual =
          List.length (List.filter (String.equal w) (naive_slice seq lo hi))
        in
        check_int ("count of " ^ w) actual c)
      got
  done;
  (* k larger than the distinct count returns everything *)
  let all = Range.Static.top_k wt ~lo:0 ~hi:400 1000 in
  check_int "k too large" (List.length (naive_distinct seq 0 400)) (List.length all);
  (* with a prefix restriction *)
  let p = word_prefix "a" in
  let got = Range.Static.top_k wt ~prefix:p ~lo:0 ~hi:400 3 in
  List.iter
    (fun (s, _) -> check_bool "prefixed" true (Bitstring.is_prefix ~prefix:p s))
    got

let test_quantile () =
  let rng = Xoshiro.create 888 in
  let seq = make_seq rng 350 in
  let wt = Flat_wt.of_array (Array.map encode seq) in
  for _ = 1 to 80 do
    let lo = Xoshiro.int rng 351 in
    let hi = lo + Xoshiro.int rng (350 - lo + 1) in
    if hi > lo then begin
      (* sorted multiset of the byte strings in range *)
      let sorted = List.sort compare (naive_slice seq lo hi) in
      let k = Xoshiro.int rng (hi - lo) in
      (match Range.Static.quantile wt ~lo ~hi k with
      | Some s ->
          Alcotest.(check string) "quantile" (List.nth sorted k) (Binarize.to_bytes s)
      | None -> Alcotest.fail "quantile returned None in range");
      Alcotest.(check (option string))
        "quantile out of range" None
        (Option.map Binarize.to_bytes (Range.Static.quantile wt ~lo ~hi (hi - lo)));
      (* median = quantile at (hi-lo)/2 *)
      match Range.Static.quantile wt ~lo ~hi ((hi - lo) / 2) with
      | Some s ->
          Alcotest.(check string) "median"
            (List.nth sorted ((hi - lo) / 2))
            (Binarize.to_bytes s)
      | None -> Alcotest.fail "median missing"
    end
  done;
  (* prefix-restricted: k-th smallest among strings with the prefix *)
  let p = word_prefix "b" in
  let matching = List.sort compare (List.filter (fun w -> w.[0] = 'b') (naive_slice seq 0 350)) in
  List.iteri
    (fun k expected ->
      if k < 5 then
        match Range.Static.quantile wt ~prefix:p ~lo:0 ~hi:350 k with
        | Some s -> Alcotest.(check string) "prefixed quantile" expected (Binarize.to_bytes s)
        | None -> Alcotest.fail "prefixed quantile missing")
    matching

let test_big_skewed () =
  (* majority exists on a skewed range; at_least finds the heavy hitters *)
  let seq = Array.make 1000 "heavy" in
  for i = 0 to 399 do
    seq.(2 * i) <- [| "x"; "y"; "z" |].(i mod 3)
  done;
  (* seq has 600 "heavy" plus 400 others interleaved in the first 800 *)
  let ops = static_ops seq in
  (match ops.majority ~lo:0 ~hi:1000 () with
  | Some (s, c) ->
      Alcotest.(check string) "majority heavy" "heavy" (Binarize.to_bytes s);
      check_bool "majority count" true (c > 500)
  | None -> Alcotest.fail "expected a majority");
  let heavies = decode_list (ops.at_least ~lo:0 ~hi:1000 ~threshold:100 ()) in
  check_bool "at_least finds heavy+x,y,z" true (List.length heavies = 4)

let () =
  Alcotest.run "wt_range"
    [
      ( "range",
        [
          Alcotest.test_case "static vs naive" `Quick test_static;
          Alcotest.test_case "all variants vs naive" `Quick test_variants;
          Alcotest.test_case "edge cases" `Quick test_edge_cases;
          Alcotest.test_case "top-k vs naive" `Quick test_top_k;
          Alcotest.test_case "quantile vs naive" `Quick test_quantile;
          Alcotest.test_case "skewed data" `Quick test_big_skewed;
        ] );
    ]
